package wfsort_test

import (
	"bytes"
	"sort"
	"testing"

	"wfsort"
)

// FuzzSort feeds arbitrary byte strings through the full native sort
// pipeline with fuzzer-chosen worker counts, variants, arena layouts
// and seeds, checking two explicit invariants: the output is sorted,
// and it is a permutation of the input (equal to the stdlib's sort of
// the same multiset).
func FuzzSort(f *testing.F) {
	f.Add([]byte("hello world"), uint8(4), uint8(0), uint8(0), uint64(0))
	f.Add([]byte{0, 0, 0, 0}, uint8(1), uint8(1), uint8(1), uint64(7))
	f.Add([]byte{255, 1, 128, 1, 255, 0}, uint8(9), uint8(2), uint8(2), uint64(3))
	f.Add([]byte{}, uint8(3), uint8(0), uint8(2), uint64(1))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(6), uint8(1), uint8(0), uint64(5))
	f.Fuzz(func(t *testing.T, raw []byte, workers, variant, layout uint8, seed uint64) {
		data := make([]int, len(raw))
		for i, b := range raw {
			data[i] = int(b)
		}
		want := make([]int, len(data))
		copy(want, data)
		sort.Ints(want)

		p := int(workers)%32 + 1
		v := wfsort.Variant(variant % 3)
		l := wfsort.Layout(layout % 3)
		err := wfsort.Sort(data, wfsort.WithWorkers(p), wfsort.WithVariant(v),
			wfsort.WithLayout(l), wfsort.WithSeed(seed))
		if err != nil {
			t.Fatalf("Sort(p=%d v=%v l=%v): %v", p, v, l, err)
		}
		if !sort.IntsAreSorted(data) {
			t.Fatalf("p=%d v=%v l=%v input=%v: output not sorted: %v", p, v, l, raw, data)
		}
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("p=%d v=%v l=%v input=%v: position %d = %d, want %d (not a permutation)",
					p, v, l, raw, i, data[i], want[i])
			}
		}
	})
}

// FuzzSimulate drives the simulator with fuzzer-chosen keys, workers,
// variants and seeds, checking ranks always form the true ranking.
func FuzzSimulate(f *testing.F) {
	f.Add([]byte{5, 3, 8}, uint8(2), uint8(0), uint64(1))
	f.Add([]byte{1, 1, 1, 1, 1}, uint8(5), uint8(2), uint64(9))
	f.Add(bytes.Repeat([]byte{7}, 40), uint8(16), uint8(1), uint64(3))
	f.Fuzz(func(t *testing.T, raw []byte, workers uint8, variant uint8, seed uint64) {
		if len(raw) > 256 {
			raw = raw[:256] // keep simulation cheap
		}
		keys := make([]int, len(raw))
		for i, b := range raw {
			keys[i] = int(b)
		}
		p := int(workers)%64 + 1
		v := wfsort.Variant(variant % 3)
		res, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(p), wfsort.WithVariant(v), wfsort.WithSeed(seed))
		if err != nil {
			t.Fatalf("Simulate(p=%d v=%v): %v", p, v, err)
		}
		if len(keys) == 0 {
			return
		}
		// Verify ranks: stable ranking by (key, index).
		ids := make([]int, len(keys))
		for i := range ids {
			ids[i] = i
		}
		sort.SliceStable(ids, func(a, b int) bool { return keys[ids[a]] < keys[ids[b]] })
		for pos, i := range ids {
			if res.Ranks[i] != pos+1 {
				t.Fatalf("p=%d v=%v keys=%v: element %d rank %d, want %d",
					p, v, keys, i+1, res.Ranks[i], pos+1)
			}
		}
	})
}
