package wfsort_test

import (
	"bytes"
	"sort"
	"testing"

	"wfsort"
	"wfsort/internal/chaos"
)

// FuzzSort feeds arbitrary byte strings through the full native sort
// pipeline with fuzzer-chosen worker counts, variants, arena layouts
// and seeds, checking two explicit invariants: the output is sorted,
// and it is a permutation of the input (equal to the stdlib's sort of
// the same multiset). When the fuzzer picks a nonzero kill fraction,
// the same keys additionally run through the chaos harness under a
// seeded crash quorum: the survivors' output must still match the
// stable-sorted reference and certify under the wait-freedom op
// ceiling.
func FuzzSort(f *testing.F) {
	f.Add([]byte("hello world"), uint8(4), uint8(0), uint8(0), uint64(0), uint8(0), uint64(0))
	f.Add([]byte{0, 0, 0, 0}, uint8(1), uint8(1), uint8(1), uint64(7), uint8(0), uint64(2))
	f.Add([]byte{255, 1, 128, 1, 255, 0}, uint8(9), uint8(2), uint8(2), uint64(3), uint8(3), uint64(5))
	f.Add([]byte{}, uint8(3), uint8(0), uint8(2), uint64(1), uint8(1), uint64(9))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(6), uint8(1), uint8(0), uint64(5), uint8(4), uint64(11))
	f.Add(bytes.Repeat([]byte{42}, 64), uint8(8), uint8(1), uint8(0), uint64(6), uint8(7), uint64(13))
	f.Fuzz(func(t *testing.T, raw []byte, workers, variant, layout uint8, seed uint64, killFrac uint8, faultSeed uint64) {
		data := make([]int, len(raw))
		for i, b := range raw {
			data[i] = int(b)
		}
		want := make([]int, len(data))
		copy(want, data)
		sort.Ints(want)

		p := int(workers)%32 + 1
		v := wfsort.Variant(variant % 3)
		l := wfsort.Layout(layout % 3)
		err := wfsort.Sort(data, wfsort.WithWorkers(p), wfsort.WithVariant(v),
			wfsort.WithLayout(l), wfsort.WithSeed(seed))
		if err != nil {
			t.Fatalf("Sort(p=%d v=%v l=%v): %v", p, v, l, err)
		}
		if !sort.IntsAreSorted(data) {
			t.Fatalf("p=%d v=%v l=%v input=%v: output not sorted: %v", p, v, l, raw, data)
		}
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("p=%d v=%v l=%v input=%v: position %d = %d, want %d (not a permutation)",
					p, v, l, raw, i, data[i], want[i])
			}
		}

		// Fault-injected replay: crash roughly killFrac/8 of the workers
		// (sparing processor 0) at seeded op ordinals and re-sort the
		// same keys on the native runtime via the chaos certifier.
		if frac := float64(killFrac%8) / 8; frac > 0 && len(raw) > 0 {
			keys := make([]int, len(raw))
			if len(keys) > 512 {
				keys = keys[:512] // keep the crash replay cheap
			}
			for i := range keys {
				keys[i] = int(raw[i])
			}
			cp := int(workers)%8 + 2
			window := int64(len(keys) + 1)
			spec := chaos.Spec{
				Keys: keys, P: cp, Layout: chaos.Layout(layout % 3), Seed: seed,
				Crashes: chaos.CrashQuorum(cp, frac, window, faultSeed),
			}
			res, err := chaos.RunNative(spec)
			if err != nil {
				t.Fatalf("chaos replay(p=%d l=%v frac=%.2f): %v", cp, spec.Layout, frac, err)
			}
			if !res.Sorted {
				t.Fatalf("chaos replay(p=%d l=%v frac=%.2f keys=%v): output not sorted (%s)",
					cp, spec.Layout, frac, keys, res.Error)
			}
			if !res.Certified {
				t.Fatalf("chaos replay(p=%d l=%v frac=%.2f): max ops %d over ceiling %d",
					cp, spec.Layout, frac, res.MaxOps, res.Bound)
			}
		}
	})
}

// FuzzSimulate drives the simulator with fuzzer-chosen keys, workers,
// variants and seeds, checking ranks always form the true ranking.
func FuzzSimulate(f *testing.F) {
	f.Add([]byte{5, 3, 8}, uint8(2), uint8(0), uint64(1))
	f.Add([]byte{1, 1, 1, 1, 1}, uint8(5), uint8(2), uint64(9))
	f.Add(bytes.Repeat([]byte{7}, 40), uint8(16), uint8(1), uint64(3))
	f.Fuzz(func(t *testing.T, raw []byte, workers uint8, variant uint8, seed uint64) {
		if len(raw) > 256 {
			raw = raw[:256] // keep simulation cheap
		}
		keys := make([]int, len(raw))
		for i, b := range raw {
			keys[i] = int(b)
		}
		p := int(workers)%64 + 1
		v := wfsort.Variant(variant % 3)
		res, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(p), wfsort.WithVariant(v), wfsort.WithSeed(seed))
		if err != nil {
			t.Fatalf("Simulate(p=%d v=%v): %v", p, v, err)
		}
		if len(keys) == 0 {
			return
		}
		// Verify ranks: stable ranking by (key, index).
		ids := make([]int, len(keys))
		for i := range ids {
			ids[i] = i
		}
		sort.SliceStable(ids, func(a, b int) bool { return keys[ids[a]] < keys[ids[b]] })
		for pos, i := range ids {
			if res.Ranks[i] != pos+1 {
				t.Fatalf("p=%d v=%v keys=%v: element %d rank %d, want %d",
					p, v, keys, i+1, res.Ranks[i], pos+1)
			}
		}
	})
}
