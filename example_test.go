package wfsort_test

import (
	"fmt"

	"wfsort"
)

func ExampleSort() {
	nums := []int{42, 7, 19, 3, 88}
	if err := wfsort.Sort(nums); err != nil {
		panic(err)
	}
	fmt.Println(nums)
	// Output: [3 7 19 42 88]
}

func ExampleSortFunc() {
	type user struct {
		name string
		age  int
	}
	users := []user{{"carol", 31}, {"alice", 24}, {"bob", 31}}
	err := wfsort.SortFunc(users, func(a, b user) bool { return a.age < b.age })
	if err != nil {
		panic(err)
	}
	// Stable: bob keeps his place before carol? No — carol came first
	// among the 31s, so she stays first.
	fmt.Println(users)
	// Output: [{alice 24} {carol 31} {bob 31}]
}

func ExampleSort_options() {
	data := []int{5, 2, 9, 1, 7, 3, 8, 4, 6, 0}
	err := wfsort.Sort(data,
		wfsort.WithWorkers(4),
		wfsort.WithVariant(wfsort.LowContention),
		wfsort.WithSeed(7),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println(data)
	// Output: [0 1 2 3 4 5 6 7 8 9]
}

func ExampleSimulate() {
	// Element i's key is keys[i-1]; keys 0..4 shuffled, so element i's
	// rank is keys[i-1]+1.
	keys := []int{3, 0, 4, 1, 2}
	res, err := wfsort.Simulate(keys,
		wfsort.WithWorkers(5), // the paper's P = N regime
		wfsort.WithSeed(1),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("ranks:", res.Ranks)
	fmt.Println("contention bounded by P:", res.Metrics.MaxContention <= 5)
	// Output:
	// ranks: [4 1 5 2 3]
	// contention bounded by P: true
}
