package wfsort

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"wfsort/internal/native"
)

// fifoShedPolicy sheds expired deadlines and otherwise keeps FIFO —
// the minimal policy exercising both hooks through the public API.
type fifoShedPolicy struct{}

func (fifoShedPolicy) Shed(now int64, j JobView) bool {
	return j.DeadlineNs != 0 && j.DeadlineNs < now
}
func (fifoShedPolicy) Pick(now int64, pending []JobView) int { return 0 }

func TestWithQueuePolicyValidation(t *testing.T) {
	if _, err := NewPool(WithQueuePolicy(fifoShedPolicy{})); err == nil {
		t.Fatal("WithQueuePolicy without WithPipeline accepted")
	}
	if _, err := NewPool(WithPipeline(4), WithQueuePolicy(nil)); err == nil {
		t.Fatal("nil queue policy accepted")
	}
	if err := Sort([]int{3, 1, 2}, WithQueuePolicy(fifoShedPolicy{})); err == nil {
		t.Fatal("one-shot sort accepted WithQueuePolicy")
	}
	p, err := NewPool(WithWorkers(2), WithPipeline(4), WithQueuePolicy(fifoShedPolicy{}))
	if err != nil {
		t.Fatalf("valid pipelined pool rejected: %v", err)
	}
	p.Close()
}

// TestPooledSortDeadlineShed drives the whole stack through the public
// API: a pooled, pipelined sorter with a shedding policy returns
// ErrDeadlineShed for a job whose deadline already passed, leaves the
// input untouched, and keeps sorting afterwards.
func TestPooledSortDeadlineShed(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(2), WithPipeline(4), WithQueuePolicy(fifoShedPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	mk := func(n int, seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		out := make([]int, n)
		for i := range out {
			out[i] = rng.Intn(500)
		}
		return out
	}

	// Big enough to take the pooled pipeline path (> FreshCutoff).
	data := mk(300, 1)
	orig := append([]int(nil), data...)
	ctx := WithJobQoS(context.Background(), JobQoS{
		Class:    "doomed",
		Deadline: time.Now().Add(-time.Second),
	})
	if err := s.SortContext(ctx, data); !errors.Is(err, ErrDeadlineShed) {
		t.Fatalf("expired-deadline sort returned %v, want ErrDeadlineShed", err)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatal("shed sort modified its input")
		}
	}

	// The crew is unharmed: a normal sort on the same pool succeeds.
	data = mk(300, 2)
	if err := s.Sort(data); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(data) {
		t.Fatal("post-shed sort produced unsorted output")
	}

	// A generous deadline is never shed.
	data = mk(300, 3)
	ctx = WithJobQoS(context.Background(), JobQoS{Deadline: time.Now().Add(time.Hour)})
	if err := s.SortContext(ctx, data); err != nil {
		t.Fatalf("meetable deadline shed: %v", err)
	}
	if !sort.IntsAreSorted(data) {
		t.Fatal("unsorted output")
	}
}

// TestJobQoSEstCostDefault checks the context envelope reaches the
// queue policy with EstCost defaulted to the borrowed class capacity.
func TestJobQoSEstCostDefault(t *testing.T) {
	seen := make(chan JobView, 1)
	p, err := NewPool(WithWorkers(2), WithPipeline(4), WithQueuePolicy(captPolicy{seen}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s, err := NewSorterFunc[int](func(a, b int) bool { return a < b }, WithPool(p))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int, 300)
	for i := range data {
		data[i] = 300 - i
	}
	ctx := WithJobQoS(context.Background(), JobQoS{Class: "lat", Priority: 2})
	if err := s.SortContext(ctx, data); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-seen:
		if v.Class != "lat" || v.Priority != 2 {
			t.Fatalf("policy saw %+v, want class lat priority 2", v)
		}
		if v.EstCost < 300 {
			t.Fatalf("EstCost = %d, want >= n (class capacity)", v.EstCost)
		}
	default:
		t.Fatal("policy never saw the job")
	}
}

// captPolicy records the first JobView it ever sees. The capture runs
// in Shed, which the dispatcher runs over every queued job before each
// pick.
type captPolicy struct{ seen chan JobView }

func (c captPolicy) Shed(now int64, j native.JobView) bool {
	select {
	case c.seen <- j:
	default:
	}
	return false
}
func (captPolicy) Pick(now int64, pending []native.JobView) int { return 0 }
