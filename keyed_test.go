package wfsort

import (
	"context"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"
)

// record is the struct-workload shape: an ordering key plus a payload
// big enough that any hidden payload copy would dominate the sort's
// memory traffic.
type record struct {
	key     int64
	seq     int
	payload [120]byte
}

func recordKey(r record) uint64 { return Int64Key(r.key) }

func makeRecords(n int, seed int64) []record {
	rng := rand.New(rand.NewSource(seed))
	span := n / 4 // narrow key range forces ties, exercising stability
	if span < 2 {
		span = 2
	}
	data := make([]record, n)
	for i := range data {
		data[i] = record{key: int64(rng.Intn(span)), seq: i}
		data[i].payload[0] = byte(i)
	}
	return data
}

func checkSortedStable(t *testing.T, data []record) {
	t.Helper()
	for i := 1; i < len(data); i++ {
		if data[i-1].key > data[i].key {
			t.Fatalf("keys out of order at %d: %d > %d", i, data[i-1].key, data[i].key)
		}
		if data[i-1].key == data[i].key && data[i-1].seq > data[i].seq {
			t.Fatalf("stability broken at %d: seq %d before %d", i, data[i-1].seq, data[i].seq)
		}
	}
}

func TestSortKeyedStructs(t *testing.T) {
	for _, n := range []int{2, 3, 64, 65, 255, 1000, 5000} {
		data := makeRecords(n, int64(n))
		want := append([]record(nil), data...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
		if err := SortKeyed(data, recordKey, WithSeed(7)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSortedStable(t, data)
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("n=%d: element %d diverges from sort.SliceStable", n, i)
			}
		}
	}
}

func TestSortKeyedNegativeKeys(t *testing.T) {
	data := []record{{key: 5}, {key: -7}, {key: 0}, {key: -7, seq: 1}, {key: 1 << 40}, {key: -(1 << 40)}}
	if err := SortKeyed(data, recordKey); err != nil {
		t.Fatal(err)
	}
	checkSortedStable(t, data)
	if data[0].key != -(1<<40) || data[len(data)-1].key != 1<<40 {
		t.Fatalf("negative ordering wrong: %v ... %v", data[0].key, data[len(data)-1].key)
	}
}

func TestSortKeyedNilKey(t *testing.T) {
	if err := SortKeyed([]record{{}, {}}, nil); err == nil {
		t.Fatal("nil key function accepted")
	}
	if _, err := NewKeyedSorter[record](nil); err == nil {
		t.Fatal("NewKeyedSorter accepted nil key function")
	}
}

func TestKeyedSorterPooled(t *testing.T) {
	s, err := NewKeyedSorter(recordKey, WithWorkers(4), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Cross class sizes and the fresh cutoff, reusing contexts and key
	// buffers; every result checked against the reference sort.
	for iter, n := range []int{10, 64, 65, 300, 257, 1024, 5000, 300, 10} {
		data := makeRecords(n, int64(iter*100+n))
		want := append([]record(nil), data...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
		if err := s.Sort(data); err != nil {
			t.Fatalf("iter %d n=%d: %v", iter, n, err)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("iter %d n=%d: element %d diverges", iter, n, i)
			}
		}
	}
	if st := s.Stats(); st.Hits == 0 {
		t.Fatalf("no pooled context reuse: %+v", st)
	}
}

func TestKeyedSorterSharedPool(t *testing.T) {
	pool, err := NewPool(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ks, err := NewKeyedSorter(recordKey, WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewSorterFunc[record](func(a, b record) bool { return a.key < b.key }, WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	// Keyed and comparator sorters interleave on one pool: contexts are
	// key-agnostic, so residue from one must never reach the other.
	for iter := 0; iter < 6; iter++ {
		data := makeRecords(700, int64(iter))
		want := append([]record(nil), data...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
		var sortErr error
		if iter%2 == 0 {
			sortErr = ks.Sort(data)
		} else {
			sortErr = cs.Sort(data)
		}
		if sortErr != nil {
			t.Fatalf("iter %d: %v", iter, sortErr)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("iter %d: element %d diverges", iter, i)
			}
		}
	}
	if _, err := NewKeyedSorter(recordKey, WithPool(pool), WithWorkers(2)); err == nil {
		t.Fatal("WithPool plus another option accepted")
	}
}

func TestKeyedSorterPipelinedWithFaults(t *testing.T) {
	s, err := NewKeyedSorter(recordKey, WithWorkers(4), WithPipeline(4), WithChurn(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for iter := 0; iter < 8; iter++ {
		data := makeRecords(900, int64(iter))
		want := append([]record(nil), data...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
		if err := s.Sort(data); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range data {
			if data[i] != want[i] {
				t.Fatalf("iter %d: element %d diverges under churn", iter, i)
			}
		}
	}
}

func TestKeyedSorterCancelLeavesDataUnchanged(t *testing.T) {
	s, err := NewKeyedSorter(recordKey, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := makeRecords(4096, 1)
	orig := append([]record(nil), data...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.SortContext(ctx, data)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("canceled sort mutated element %d", i)
		}
	}
	// A short deadline that expires mid-sort also leaves data either
	// fully sorted (sort won the race) or byte-identical to the input.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Microsecond)
	defer cancel2()
	data2 := makeRecords(8192, 2)
	orig2 := append([]record(nil), data2...)
	if err := s.SortContext(ctx2, data2); err != nil {
		for i := range data2 {
			if data2[i] != orig2[i] {
				t.Fatalf("aborted sort mutated element %d", i)
			}
		}
	} else {
		checkSortedStable(t, data2)
	}
}

func TestPermuteInPlace(t *testing.T) {
	data := []int{10, 20, 30, 40, 50}
	places := []int{3, 1, 5, 2, 4} // data[i] -> position places[i]-1
	if err := permuteInPlace(data, places); err != nil {
		t.Fatal(err)
	}
	want := []int{20, 40, 10, 50, 30}
	for i := range data {
		if data[i] != want[i] {
			t.Fatalf("got %v, want %v", data, want)
		}
	}
	// Corrupted rank vectors error out instead of hanging or writing
	// out of range.
	if err := permuteInPlace([]int{1, 2}, []int{1, 3}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if err := permuteInPlace([]int{1, 2, 3}, []int{1, 1, 2}); err == nil {
		t.Fatal("duplicated rank accepted")
	}
}

// TestKeyedZeroPayloadCopies is the zero-copy assertion: steady-state
// pooled keyed sorts must not allocate memory proportional to the
// payload. Each sort moves n records of ~136 bytes (~700 KiB of
// payload); the comparator Sorter copies all of it into its input
// buffer every call, while the keyed path allocates only watcher-
// goroutine crumbs. The budget of 32 KiB/sort (~4% of payload) is
// loose enough for runtime noise and far below one payload copy.
func TestKeyedZeroPayloadCopies(t *testing.T) {
	s, err := NewKeyedSorter(recordKey, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 5000
	data := makeRecords(n, 9)
	for i := 0; i < 3; i++ { // warm the pool, team and key buffers
		if err := s.Sort(data); err != nil {
			t.Fatal(err)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 10
	for i := 0; i < rounds; i++ {
		if err := s.Sort(data); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perSort := int64(after.TotalAlloc-before.TotalAlloc) / rounds
	payload := int64(n) * int64(len(record{}.payload))
	if perSort > 32*1024 {
		t.Fatalf("keyed sort allocates %d B/sort (payload is %d B): payloads are being copied", perSort, payload)
	}
}

// BenchmarkKeyedVsComparator is the benchmark evidence behind the
// zero-copy claim. Both paths pool their scratch, so the comparator's
// per-sort payload copy shows up in ns/op rather than B/op (copying a
// pooled buffer allocates nothing): at 136-byte payloads the keyed
// path runs ~2x faster per sort on the reference container. The
// allocation-side assertion lives in TestKeyedZeroPayloadCopies, which
// pins steady-state TotalAlloc per keyed sort to a small constant far
// below one payload copy.
func BenchmarkKeyedVsComparator(b *testing.B) {
	const n = 4096
	b.Run("keyed", func(b *testing.B) {
		s, err := NewKeyedSorter(recordKey, WithWorkers(4))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		data := makeRecords(n, 1)
		if err := s.Sort(data); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Sort(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("comparator", func(b *testing.B) {
		s, err := NewSorterFunc[record](func(x, y record) bool { return x.key < y.key }, WithWorkers(4))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		data := makeRecords(n, 1)
		if err := s.Sort(data); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Sort(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
