package wfsort

import (
	"context"

	"wfsort/internal/native"
)

// PhaseDur re-exports one worker phase's crew-wide duration from a
// traced pipelined sort.
type PhaseDur = native.PhaseDur

// SortTrace is the per-call timing sink a caller may attach to a
// pooled SortContext via WithSortTrace. After SortContext returns, the
// sink holds the sort's interior attribution:
//
//   - QueueWaitNs: time the job spent in the pipelined crew's pending
//     queue before dispatch (0 on serial-team and fresh-path sorts,
//     which have no queue);
//   - RunNs: crew-execution wall time, dispatch (or team start) to
//     last worker done;
//   - Phases: per-phase breakdown of RunNs using the engine graph's
//     phase labels (pipelined sorts only — the serial team has no
//     phase notification hook).
//
// The sink is written once, by the SortContext call itself, after the
// run completes — no concurrent access unless the caller shares one
// sink across calls, which it should not.
type SortTrace struct {
	QueueWaitNs int64
	RunNs       int64
	Phases      []PhaseDur
}

// sortTraceKey carries a *SortTrace through a context.
type sortTraceKey struct{}

// WithSortTrace returns a context that makes one SortContext call fill
// t with its interior timing (queue wait, crew wall, per-phase splits)
// — the seam the serving layer uses to attribute a request's latency
// across stages without threading a new parameter through the public
// Sort API. A nil t is ignored.
func WithSortTrace(ctx context.Context, t *SortTrace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, sortTraceKey{}, t)
}

// sortTraceFrom extracts the sink installed by WithSortTrace, if any.
func sortTraceFrom(ctx context.Context) *SortTrace {
	t, _ := ctx.Value(sortTraceKey{}).(*SortTrace)
	return t
}
