package wfsort

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"wfsort/internal/sizeclass"
)

func randSlice(rng *rand.Rand, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(n/2 + 1) // duplicates on purpose
	}
	return s
}

func checkSorted(t *testing.T, got, orig []int) {
	t.Helper()
	want := append([]int(nil), orig...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("length changed: %d -> %d", len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestSorterReuse drives one Sorter across many sizes and checks every
// output, then that the build counter stayed at one per touched class.
func TestSorterReuse(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	classes := map[int]bool{}
	for i := 0; i < 30; i++ {
		n := 65 + rng.Intn(2000)
		cap, _ := sizeclass.For(n)
		classes[cap] = true
		data := randSlice(rng, n)
		orig := append([]int(nil), data...)
		if err := s.Sort(data); err != nil {
			t.Fatalf("sort %d (n=%d): %v", i, n, err)
		}
		checkSorted(t, data, orig)
	}
	st := s.Stats()
	if st.Builds > int64(len(classes)) {
		t.Fatalf("builds = %d for %d touched classes — contexts not reused", st.Builds, len(classes))
	}
	if st.Hits == 0 {
		t.Fatal("no pool hits across 30 sorts")
	}
}

// TestSorterStability sorts records by key only and checks equal keys
// keep their input order, through the pooled (padded) path.
func TestSorterStability(t *testing.T) {
	type rec struct{ key, pos int }
	s, err := NewSorterFunc[rec](func(a, b rec) bool { return a.key < b.key }, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		n := 100 + rng.Intn(900)
		data := make([]rec, n)
		for i := range data {
			data[i] = rec{key: rng.Intn(7), pos: i}
		}
		if err := s.Sort(data); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < n; i++ {
			if data[i-1].key > data[i].key {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
			if data[i-1].key == data[i].key && data[i-1].pos > data[i].pos {
				t.Fatalf("trial %d: stability broken at %d", trial, i)
			}
		}
	}
}

// TestSorterZeroSteadyStateBuilds is the pooling claim stated exactly:
// after one warmup sort at a size, further sorts at that size build
// nothing.
func TestSorterZeroSteadyStateBuilds(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	data := randSlice(rng, 1000)
	if err := s.Sort(data); err != nil {
		t.Fatal(err)
	}
	warm := s.Stats().Builds
	for i := 0; i < 50; i++ {
		d := randSlice(rng, 900+i)
		if err := s.Sort(d); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Builds; got != warm {
		t.Fatalf("steady state built %d contexts, want 0", got-warm)
	}
}

// TestSorterSmallInputs covers the fresh-path cutoff and degenerate
// sizes.
func TestSorterSmallInputs(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, n := range []int{0, 1, 2, 3, sizeclass.FreshCutoff, sizeclass.FreshCutoff + 1} {
		rng := rand.New(rand.NewSource(int64(n)))
		data := randSlice(rng, n)
		orig := append([]int(nil), data...)
		if err := s.Sort(data); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSorted(t, data, orig)
	}
}

// TestSorterChurn runs the kill/revive fault plane on every sort; the
// outputs must be indistinguishable from faultless runs.
func TestSorterChurn(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(4), WithChurn(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		data := randSlice(rng, 300+50*i)
		orig := append([]int(nil), data...)
		if err := s.Sort(data); err != nil {
			t.Fatalf("churn sort %d: %v", i, err)
		}
		checkSorted(t, data, orig)
	}
}

// TestSorterCrashes fail-stops half the workers per sort without
// revival; survivors must still produce correct output every time, and
// the resident teams must be whole again for each next sort.
func TestSorterCrashes(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(4), WithCrashes(0.5, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		data := randSlice(rng, 400)
		orig := append([]int(nil), data...)
		if err := s.Sort(data); err != nil {
			t.Fatalf("crash sort %d: %v", i, err)
		}
		checkSorted(t, data, orig)
	}
}

// TestSorterContextCancel: a canceled context aborts the sort, leaves
// the data untouched, and the sorter keeps working afterwards.
func TestSorterContextCancel(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Already-canceled context: immediate return, no work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := []int{3, 1, 2, 5, 4}
	if err := s.SortContext(ctx, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: err = %v, want context.Canceled", err)
	}

	// Cancel racing a large sort: either the sort completed (sorted
	// output, nil error) or the abort won (untouched data, ctx error).
	rng := rand.New(rand.NewSource(6))
	big := randSlice(rng, 200_000)
	orig := append([]int(nil), big...)
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.SortContext(ctx2, big) }()
	cancel2()
	switch err := <-done; {
	case err == nil:
		checkSorted(t, big, orig)
	case errors.Is(err, context.Canceled):
		for i := range big {
			if big[i] != orig[i] {
				t.Fatalf("aborted sort mutated data at %d", i)
			}
		}
	default:
		t.Fatalf("unexpected error: %v", err)
	}

	// The pool must still serve sorts after an abort.
	after := randSlice(rng, 1000)
	origAfter := append([]int(nil), after...)
	if err := s.Sort(after); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, after, origAfter)
}

// TestWithPoolSharing: two sorters over one pool share its contexts;
// WithPool plus any other option is rejected; closing a borrowing
// sorter leaves the pool alive.
func TestWithPoolSharing(t *testing.T) {
	p, err := NewPool(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := NewSorter[int](WithPool(p), WithWorkers(2)); err == nil {
		t.Fatal("WithPool+WithWorkers should be rejected")
	}
	if err := Sort([]int{2, 1}, WithPool(p)); err == nil {
		t.Fatal("one-shot Sort with WithPool should be rejected")
	}

	s1, err := NewSorter[int](WithPool(p))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSorterFunc[int](func(a, b int) bool { return a > b }, WithPool(p))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	d1 := randSlice(rng, 500)
	o1 := append([]int(nil), d1...)
	if err := s1.Sort(d1); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, d1, o1)

	d2 := randSlice(rng, 500)
	if err := s2.Sort(d2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d2); i++ {
		if d2[i-1] < d2[i] {
			t.Fatalf("descending sorter broke at %d", i)
		}
	}
	s1.Close() // borrower Close must not kill the shared pool
	d3 := randSlice(rng, 500)
	if err := s2.Sort(d3); err != nil {
		t.Fatalf("after sibling Close: %v", err)
	}
	for i := 1; i < len(d3); i++ {
		if d3[i-1] < d3[i] {
			t.Fatalf("descending sorter broke at %d after sibling Close", i)
		}
	}

	if p.Stats().Gets == 0 {
		t.Fatal("shared pool saw no traffic")
	}
}

// TestPoolTrim drops idle state and keeps serving.
func TestPoolTrim(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(8))
	data := randSlice(rng, 500)
	if err := s.Sort(data); err != nil {
		t.Fatal(err)
	}
	s.p.Trim()
	data2 := randSlice(rng, 500)
	orig2 := append([]int(nil), data2...)
	if err := s.Sort(data2); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, data2, orig2)
	if got := s.Stats().Trims; got == 0 {
		t.Fatal("Trim dropped nothing")
	}
}

// TestSorterPipelined drives a phase-pipelined pooled sorter from
// several goroutines at once — the regime the pipeline exists for —
// and checks every output. Sequential sorts ride the same crew.
func TestSorterPipelined(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(4), WithPipeline(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 6; i++ {
		data := randSlice(rng, 100+200*i)
		orig := append([]int(nil), data...)
		if err := s.Sort(data); err != nil {
			t.Fatalf("sequential sort %d: %v", i, err)
		}
		checkSorted(t, data, orig)
	}

	const clients = 4
	inputs := make([][]int, clients*3)
	origs := make([][]int, len(inputs))
	for i := range inputs {
		inputs[i] = randSlice(rng, 150+100*i)
		origs[i] = append([]int(nil), inputs[i]...)
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(inputs); i += clients {
				if err := s.Sort(inputs[i]); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	for i := range inputs {
		checkSorted(t, inputs[i], origs[i])
	}
}

// TestSorterPipelinedChurn overlaps faulted sorts on the pipelined
// crew: per-job kill flags mean one sort's churn never leaks into the
// jobs pipelined around it.
func TestSorterPipelinedChurn(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(4), WithPipeline(2), WithChurn(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		data := randSlice(rng, 300+60*i)
		orig := append([]int(nil), data...)
		if err := s.Sort(data); err != nil {
			t.Fatalf("pipelined churn sort %d: %v", i, err)
		}
		checkSorted(t, data, orig)
	}
}

// TestSorterPipelinedContextCancel: aborting one pipelined sort leaves
// the data untouched and the crew serving.
func TestSorterPipelinedContextCancel(t *testing.T) {
	s, err := NewSorter[int](WithWorkers(2), WithPipeline(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(12))
	big := randSlice(rng, 200_000)
	orig := append([]int(nil), big...)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.SortContext(ctx, big) }()
	cancel()
	switch err := <-done; {
	case err == nil:
		checkSorted(t, big, orig)
	case errors.Is(err, context.Canceled):
		for i := range big {
			if big[i] != orig[i] {
				t.Fatalf("aborted pipelined sort mutated data at %d", i)
			}
		}
	default:
		t.Fatalf("unexpected error: %v", err)
	}

	after := randSlice(rng, 1000)
	origAfter := append([]int(nil), after...)
	if err := s.Sort(after); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, after, origAfter)
}

// TestWithPipelineOneShotRejected locks WithPipeline to pools: the
// one-shot paths have exactly one job, so the option is a usage error.
func TestWithPipelineOneShotRejected(t *testing.T) {
	if err := Sort([]int{3, 1, 2}, WithPipeline(2)); err == nil {
		t.Fatal("one-shot Sort accepted WithPipeline")
	}
	if _, err := Simulate([]int{3, 1, 2}, WithPipeline(2)); err == nil {
		t.Fatal("Simulate accepted WithPipeline")
	}
}

// TestSimulateRejectsNativeFaults locks the option boundary.
func TestSimulateRejectsNativeFaults(t *testing.T) {
	if _, err := Simulate([]int{3, 1, 2}, WithChurn(1)); err == nil {
		t.Fatal("Simulate accepted WithChurn")
	}
	if _, err := Simulate([]int{3, 1, 2}, WithCrashes(0.5, 16)); err == nil {
		t.Fatal("Simulate accepted WithCrashes")
	}
}

// BenchmarkSorterReuse is the pooling acceptance benchmark: in steady
// state a pooled sort must build zero arenas (the arena-builds/op
// metric) versus one full build per op on the fresh path
// (BenchmarkSorterFresh).
func BenchmarkSorterReuse(b *testing.B) {
	s, err := NewSorter[int](WithWorkers(2))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(9))
	data := randSlice(rng, 4096)
	scratch := make([]int, len(data))
	if err := s.Sort(append(scratch[:0], data...)); err != nil { // warmup
		b.Fatal(err)
	}
	start := s.Stats().Builds
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, data)
		if err := s.Sort(scratch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	builds := s.Stats().Builds - start
	b.ReportMetric(float64(builds)/float64(b.N), "arena-builds/op")
	if builds != 0 {
		b.Fatalf("steady state built %d arenas", builds)
	}
}

// BenchmarkSorterFresh is the unpooled baseline for BenchmarkSorterReuse.
func BenchmarkSorterFresh(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	data := randSlice(rng, 4096)
	scratch := make([]int, len(data))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, data)
		if err := Sort(scratch, WithWorkers(2)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "arena-builds/op")
}
