package sim_test

import (
	"sort"
	"testing"

	"wfsort"
	"wfsort/sim"
)

// TestPublicSchedulersUsable exercises the whole public simulation
// surface the way an external user would: no internal imports.
func TestPublicSchedulersUsable(t *testing.T) {
	keys := make([]int, 80)
	for i := range keys {
		keys[i] = (i * 31) % 79
	}
	schedulers := map[string]sim.Scheduler{
		"synchronous": sim.Synchronous(),
		"priority":    sim.PriorityOrder(),
		"subset":      sim.RandomSubset(0.4),
		"roundrobin":  sim.RoundRobin(2),
		"adversary":   sim.ContentionAdversary(),
		"crashes": sim.WithCrashes(sim.Synchronous(),
			keep(sim.RandomCrashes(16, 0.5, 100, 3))),
	}
	for name, s := range schedulers {
		res, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(16), wfsort.WithSeed(1), wfsort.WithSchedule(s))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ranksSorted(keys, res.Ranks) {
			t.Errorf("%s: wrong ranks", name)
		}
	}
}

// keep spares processor 0 so crashed runs can still complete.
func keep(crashes []sim.Crash) []sim.Crash {
	kept := crashes[:0]
	for _, c := range crashes {
		if c.PID != 0 {
			kept = append(kept, c)
		}
	}
	return kept
}

func ranksSorted(keys, ranks []int) bool {
	out := make([]int, len(keys))
	for i, r := range ranks {
		out[r-1] = keys[i]
	}
	return sort.IntsAreSorted(out)
}
