// Package sim exposes the simulator's schedulers for use with
// wfsort.Simulate and wfsort.WithSchedule: asynchrony models, crash
// (fail-stop) injection and the adversaries used in the experiments.
//
// The underlying machinery lives in an internal package; this package
// re-exports exactly the surface a user of the public API needs. The
// zero configuration — passing no WithSchedule option at all — is the
// faultless synchronous PRAM, the paper's "normal execution".
package sim

import (
	"wfsort/internal/pram"
)

// Scheduler decides which simulated processors advance at every machine
// step. Values are created by the constructors in this package.
type Scheduler = pram.Scheduler

// Crash schedules one processor's fail-stop: at the first step >= Step
// at which processor PID is about to execute, it is killed instead and
// never runs again.
type Crash = pram.Crash

// Synchronous returns the faultless PRAM schedule: every processor
// executes one operation every step, with uniformly shuffled
// within-step order (arbitrary-CRCW conflict resolution).
func Synchronous() Scheduler { return pram.Synchronous() }

// PriorityOrder is Synchronous with deterministic lowest-id-first
// conflict resolution (priority CRCW) — useful for exactly reproducible
// executions in tests.
func PriorityOrder() Scheduler { return pram.PriorityOrder() }

// RandomSubset models asynchrony: each processor runs in a given step
// with probability prob, independently.
func RandomSubset(prob float64) Scheduler { return pram.RandomSubset(prob) }

// RoundRobin models extreme asynchrony: exactly k processors run per
// step, rotating; RoundRobin(1) serializes the whole computation.
func RoundRobin(k int) Scheduler { return pram.RoundRobin(k) }

// WithCrashes wraps a scheduler with fail-stop injection. Wait-free
// algorithms complete regardless; barrier-based ones hang (Simulate
// returns an error once the step bound hits).
func WithCrashes(inner Scheduler, crashes []Crash) Scheduler {
	return pram.WithCrashes(inner, crashes)
}

// RandomCrashes builds a crash list killing each of p processors with
// probability frac at a uniform step in [0, window), deterministically
// from seed.
func RandomCrashes(p int, frac float64, window int64, seed uint64) []Crash {
	return pram.RandomCrashes(p, frac, window, seed)
}

// ContentionAdversary returns the operation-aware greedy adversary: it
// holds back the largest group of processors pending on one word so the
// pile-up grows. Against the randomized sort it gains nothing — that is
// experiment E15's point — but it is the natural generic adversary to
// test algorithms against.
func ContentionAdversary() Scheduler { return pram.NewContentionAdversary() }
