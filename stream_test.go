package wfsort

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"wfsort/internal/sizeclass"
	"wfsort/internal/wire"
)

func streamKeys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Uint64())
	}
	return keys
}

func runStream(t *testing.T, keys []int64, cfg StreamConfig) (StreamStats, []int64) {
	t.Helper()
	var out SliceWriter
	st, err := SortStream(context.Background(), &out, &SliceReader{Keys: keys}, cfg)
	if err != nil {
		t.Fatalf("SortStream: %v", err)
	}
	return st, out.Keys
}

func checkStreamOutput(t *testing.T, keys, got []int64) {
	t.Helper()
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("streamed %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("key %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSortStreamSingleChunk(t *testing.T) {
	keys := streamKeys(5000, 1)
	st, got := runStream(t, keys, StreamConfig{ChunkKeys: 1 << 14, Options: []Option{WithWorkers(2)}})
	checkStreamOutput(t, keys, got)
	if st.Spilled || st.Chunks != 1 || st.Keys != 5000 {
		t.Fatalf("fast path not taken: %+v", st)
	}
	sum, xor := wire.Fold(keys)
	if st.Sum != sum || st.Xor != xor {
		t.Fatalf("ledger (%d,%d), want (%d,%d)", st.Sum, st.Xor, sum, xor)
	}
}

func TestSortStreamMultiChunk(t *testing.T) {
	// 23k keys through 1k chunks: 23 spilled runs merged back.
	keys := streamKeys(23_000, 2)
	st, got := runStream(t, keys, StreamConfig{
		ChunkKeys:    1 << 10,
		Depth:        3,
		MergeBufKeys: 257, // awkward frame size stresses refills
		Options:      []Option{WithWorkers(2)},
	})
	checkStreamOutput(t, keys, got)
	if !st.Spilled || st.Chunks != 23 {
		t.Fatalf("stats %+v, want 23 spilled chunks", st)
	}
}

func TestSortStreamExactChunkBoundary(t *testing.T) {
	// N an exact multiple of ChunkKeys: no short tail chunk.
	keys := streamKeys(4*sizeclass.MinClass, 3)
	st, got := runStream(t, keys, StreamConfig{ChunkKeys: sizeclass.MinClass, Options: []Option{WithWorkers(2)}})
	checkStreamOutput(t, keys, got)
	if st.Chunks != 4 {
		t.Fatalf("chunks = %d, want 4", st.Chunks)
	}
}

func TestSortStreamEmptyAndTiny(t *testing.T) {
	st, got := runStream(t, nil, StreamConfig{Options: []Option{WithWorkers(2)}})
	if st.Keys != 0 || len(got) != 0 {
		t.Fatalf("empty stream produced %d keys", len(got))
	}
	keys := []int64{5, -1}
	_, got = runStream(t, keys, StreamConfig{Options: []Option{WithWorkers(2)}})
	checkStreamOutput(t, keys, got)
}

func TestSortStreamDuplicateHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := make([]int64, 10_000)
	for i := range keys {
		keys[i] = int64(rng.Intn(7)) // massive cross-chunk ties
	}
	_, got := runStream(t, keys, StreamConfig{ChunkKeys: 1 << 10, Options: []Option{WithWorkers(2)}})
	checkStreamOutput(t, keys, got)
}

func TestSortStreamSharedPool(t *testing.T) {
	pool, err := NewPool(WithWorkers(2), WithPipeline(4))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	keys := streamKeys(9000, 5)
	var out SliceWriter
	st, err := SortStream(context.Background(), &out, &SliceReader{Keys: keys}, StreamConfig{
		ChunkKeys: 1 << 10, Pool: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStreamOutput(t, keys, out.Keys)
	if !st.Spilled {
		t.Fatal("expected spill")
	}
	// Pool plus Options is rejected.
	if _, err := SortStream(context.Background(), &out, &SliceReader{}, StreamConfig{
		Pool: pool, Options: []Option{WithWorkers(2)},
	}); err == nil {
		t.Fatal("Pool+Options accepted")
	}
}

func TestSortStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out SliceWriter
	_, err := SortStream(ctx, &out, &SliceReader{Keys: streamKeys(50_000, 6)}, StreamConfig{
		ChunkKeys: 1 << 10, Options: []Option{WithWorkers(2)},
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSortStreamWireRoundTrip(t *testing.T) {
	// The codec is the stream's I/O dialect end to end: wire.Reader in,
	// wire blocks out.
	keys := streamKeys(12_000, 7)
	body := wire.AppendBlock(nil, wire.KindRequest, keys)
	d := wire.NewReader(bytes.NewReader(body))
	if _, err := d.Header(0); err != nil {
		t.Fatal(err)
	}
	var out SliceWriter
	_, err := SortStream(context.Background(), &out, d, StreamConfig{
		ChunkKeys: 1 << 10, Options: []Option{WithWorkers(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStreamOutput(t, keys, out.Keys)
}

// TestStreamSoak is the streaming satellite: concurrent SortStream
// runs over a churned pipelined pool, each verifying its chunk-ledger
// fold against the whole-input sum/xor, with peak heap pinned to
// O(chunk), not O(N). Short mode trims volume, not coverage.
func TestStreamSoak(t *testing.T) {
	streams, keysPer := 6, 60_000
	if testing.Short() {
		streams, keysPer = 3, 24_000
	}
	pool, err := NewPool(WithWorkers(2), WithPipeline(4), WithChurn(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const chunk = 1 << 10
	var base runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&base)

	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for g := 0; g < streams; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := streamKeys(keysPer, int64(100+g))
			wantSum, wantXor := wire.Fold(keys)
			var out ledgerWriter
			st, err := SortStream(context.Background(), &out, &SliceReader{Keys: keys}, StreamConfig{
				ChunkKeys: chunk, Pool: pool, MergeBufKeys: 512,
			})
			if err != nil {
				errs <- err
				return
			}
			// The chunk-ledger fold must equal the whole-input ledger, on
			// both the stats and the delivered bytes.
			if st.Sum != wantSum || st.Xor != wantXor {
				errs <- errLedger("stats", g, st.Sum, st.Xor, wantSum, wantXor)
				return
			}
			if out.sum != wantSum || out.xor != wantXor || out.n != int64(keysPer) {
				errs <- errLedger("output", g, out.sum, out.xor, wantSum, wantXor)
				return
			}
			if !out.sorted {
				errs <- errLedger("order", g, 0, 0, 0, 0)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Peak-memory bound: HeapAlloc growth across the soak must be far
	// below the total volume sorted (streams × keysPer × 8 bytes) —
	// in-flight chunks, merge frames and pooled arenas only. The 32 MiB
	// budget is ~24x the working set and ~1/1x the total volume guard:
	// a whole-input buffering bug blows straight through it.
	var after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&after)
	if grew := int64(after.HeapAlloc) - int64(base.HeapAlloc); grew > 32<<20 {
		t.Fatalf("heap grew %d bytes across the soak: stream memory is not O(chunk)", grew)
	}
}

// ledgerWriter folds what it receives and checks frame-to-frame order.
type ledgerWriter struct {
	sum, xor int64
	n        int64
	last     int64
	sorted   bool
	started  bool
}

func (w *ledgerWriter) WriteKeys(keys []int64) error {
	if !w.started {
		w.sorted = true
		w.started = true
	}
	for _, k := range keys {
		if w.n > 0 && k < w.last {
			w.sorted = false
		}
		w.last = k
		w.sum += k
		w.xor ^= k
		w.n++
	}
	return nil
}

func errLedger(what string, g int, gotSum, gotXor, wantSum, wantXor int64) error {
	return &ledgerErr{what: what, g: g, gs: gotSum, gx: gotXor, ws: wantSum, wx: wantXor}
}

type ledgerErr struct {
	what   string
	g      int
	gs, gx int64
	ws, wx int64
}

func (e *ledgerErr) Error() string {
	if e.what == "order" {
		return "stream " + itoa(e.g) + ": output out of order"
	}
	return "stream " + itoa(e.g) + " " + e.what + " ledger mismatch"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// slowReader trickles keys with delays, exercising the reader-bound
// regime where sorts drain faster than the input arrives.
type slowReader struct {
	keys []int64
	pos  int
}

func (r *slowReader) ReadKeys(buf []int64) (int, error) {
	if r.pos >= len(r.keys) {
		return 0, io.EOF
	}
	time.Sleep(100 * time.Microsecond)
	n := 97 // prime trickle
	if n > len(buf) {
		n = len(buf)
	}
	if n > len(r.keys)-r.pos {
		n = len(r.keys) - r.pos
	}
	copy(buf, r.keys[r.pos:r.pos+n])
	r.pos += n
	if r.pos == len(r.keys) {
		return n, io.EOF
	}
	return n, nil
}

func TestSortStreamSlowReader(t *testing.T) {
	keys := streamKeys(3000, 8)
	var out SliceWriter
	_, err := SortStream(context.Background(), &out, &slowReader{keys: keys}, StreamConfig{
		ChunkKeys: 1 << 8, Options: []Option{WithWorkers(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkStreamOutput(t, keys, out.Keys)
}
