# Convenience targets; everything is plain `go` underneath.

.PHONY: all test race bench benchgate benchgate-baseline serve-gate serve-gate-baseline pipeline-gate pipeline-gate-baseline capacity-gate capacity-gate-baseline qos-gate qos-gate-baseline trace-gate cluster-gate cluster-gate-baseline wire-gate wire-gate-baseline loadgen openloop sortd sortc soak chaos chaos-quick experiments experiments-quick stress obs fmt vet lint cover

all: vet test

test:
	go test ./...

race:
	go test -race -count=1 ./...

bench:
	go test -bench=. -benchmem .

# Gate native-sort throughput against the checked-in BENCH_native.json.
benchgate:
	go run ./cmd/benchgate

# Re-measure and overwrite the baseline (run on the reference machine).
benchgate-baseline:
	go run ./cmd/benchgate -write

# Gate the serving layer against BENCH_serve.json: pooled-vs-fresh sort
# throughput (geomean must stay >= 1.0x) and sortd request throughput,
# faultless and with half the workers crash-stopped per sort.
serve-gate:
	go run ./cmd/benchgate -serve

serve-gate-baseline:
	go run ./cmd/benchgate -serve -write

# Gate phase-level pipelining against BENCH_pipeline.json: one resident
# pipelined crew vs one serial team on the same mixed-size job stream
# (pipelined/serial geomean must stay >= 1.0x).
pipeline-gate:
	go run ./cmd/benchgate -pipeline

pipeline-gate-baseline:
	go run ./cmd/benchgate -pipeline -write

# Gate serving capacity against BENCH_capacity.json: an open-loop
# loadgen sweep finds the offered-load knee where p99 crosses the
# 50 ms SLO; the knee must stay within tolerance of the baseline.
capacity-gate:
	go run ./cmd/benchgate -capacity

capacity-gate-baseline:
	go run ./cmd/benchgate -capacity -write

# Gate the QoS plane: one two-class overload trace replayed FIFO vs
# QoS-scheduled; the latency class's p99 must drop to <= 0.7x FIFO
# while bulk keeps >= 0.8x of its FIFO throughput. Self-relative, so
# it holds on any host; BENCH_qos.json is the certification record.
qos-gate:
	go run ./cmd/benchgate -qos

qos-gate-baseline:
	go run ./cmd/benchgate -qos -write

# Gate the trace plane: race-run the request-tracing, burn-rate and
# flight-recorder tests, then measure instrumented-vs-TraceOff serving
# throughput (geomean must stay within tolerance of 1.0x).
trace-gate:
	go test -race -count=1 -run 'TestTrace|TestRejectionSpans|TestBurn|TestMetricsProm|TestStageHist|TestSpanLogLapped|TestFlightRecorder|TestExemplars|TestPerfettoAddSpans|TestPipelineRunTiming|TestRunStamps|TestHandlerTargetStages' ./internal/server ./internal/obs ./internal/native ./internal/loadgen
	go run ./cmd/benchgate -quick -observed -runs 1

# Gate the distributed tier against BENCH_cluster.json: a token-bucket
# capacity model makes admission (not CPU) the binding resource, so the
# 3-backend fleet must sustain >= 1.8x the 1-backend job rate even on a
# single-core host; the kill leg must redispatch and stay byte-identical
# to a faultless run.
cluster-gate:
	go run ./cmd/benchgate -cluster

cluster-gate-baseline:
	go run ./cmd/benchgate -cluster -write

# Gate the binary wire codec against BENCH_wire.json: binary vs JSON
# request throughput through the in-process serving path; the
# large-request binary/json ratio must stay >= 1.15x on both /sort and
# /shard, or the second codec is not paying its way.
wire-gate:
	go run ./cmd/benchgate -wire

wire-gate-baseline:
	go run ./cmd/benchgate -wire -write

# Open-loop load generator against a live service. See cmd/loadgen for
# spec format, -record/-replay, and -capacity sweeps.
loadgen:
	go run ./cmd/loadgen -spec workload.json -url http://localhost:8080

# In-process open-loop soak: mixed classes, a burst, worker churn, with
# the server's per-class counters cross-checked against the client
# ledger. Race detector on.
openloop:
	go test -race -run TestOpenLoopSoak -count=1 -v ./internal/server

# The sort service: POST /sort on :8080, graceful drain on SIGTERM.
sortd:
	go run ./cmd/sortd

# The sample-sort coordinator: scatters key-range shards across sortd
# backends, k-way merges the results. Needs -backends (see cmd/sortc).
sortc:
	go run ./cmd/sortc -backends http://localhost:8080

# Long soak: concurrent clients, mixed sizes, worker churn mid-request,
# then a drain that must come back clean. Race detector on. The cluster
# leg churns whole backends under open-loop load and cross-checks the
# coordinator's accepted-shard ledger against each backend's own.
soak:
	go test -race -run 'TestSoak|TestClusterSoak' -count=1 ./internal/server ./internal/cluster

# Fault-injection sweep: adversary policies x P x layouts, certified
# against the wait-freedom op ceiling, with pram/native differentials.
chaos:
	go run ./cmd/chaos

chaos-quick:
	go run ./cmd/chaos -quick

experiments:
	go run ./cmd/experiments

experiments-quick:
	go run ./cmd/experiments -quick

stress:
	go run ./cmd/stress -duration 1m

# Observability demo: a stress campaign with the live endpoint up
# (/metrics, /debug/vars, /debug/pprof/ on :6060) plus a native
# Perfetto trace written to obs-trace.json — open it at
# https://ui.perfetto.dev.
obs:
	go run ./cmd/trace -runtime native -n 100000 -variant rand -out obs-trace.json
	go run ./cmd/stress -duration 30s -listen :6060

fmt:
	gofmt -w .

vet:
	go vet ./...

# Static analysis: vet always; staticcheck when installed (CI installs
# it, local runs degrade gracefully).
lint:
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)" ; \
	fi

cover:
	go test -coverprofile=cover.out ./internal/... .
	go tool cover -func=cover.out | tail -1
