# Convenience targets; everything is plain `go` underneath.

.PHONY: all test race bench experiments experiments-quick stress fmt vet cover

all: vet test

test:
	go test ./...

race:
	go test -race -count=1 ./internal/native/ .

bench:
	go test -bench=. -benchmem .

experiments:
	go run ./cmd/experiments

experiments-quick:
	go run ./cmd/experiments -quick

stress:
	go run ./cmd/stress -duration 1m

fmt:
	gofmt -w .

vet:
	go vet ./...

cover:
	go test -coverprofile=cover.out ./internal/... .
	go tool cover -func=cover.out | tail -1
