// Package wfsort is a wait-free parallel sorting library, a faithful
// implementation of Shavit, Upfal and Zemach, "A Wait-Free Sorting
// Algorithm" (PODC 1997).
//
// The algorithm sorts N elements with P <= N cooperating workers in
// three wait-free phases: a Quicksort pivot tree is built by
// compare-and-swap, subtree sizes are summed, and each element's rank
// is derived from its position in the tree. No worker ever waits for
// another: work is handed out through work-assignment trees, so any
// worker can be killed (or descheduled indefinitely) at any moment and
// the survivors still finish the sort in bounded time. On a faultless
// machine the running time is O(N log N / P) with high probability.
//
// Two execution modes are exposed:
//
//   - Sort and SortFunc run on real goroutines over sync/atomic shared
//     state — a usable parallel sort whose workers may be reaped at
//     any time (examples/oskernel demonstrates live reap and respawn).
//   - Simulate runs the same algorithm on a deterministic CRCW PRAM
//     simulator with exact step counts, per-variable contention
//     accounting and crash injection — the research instrument behind
//     EXPERIMENTS.md.
//
// Both modes share one algorithm implementation; only the Proc runtime
// differs. Sorting is stable: equal elements keep their input order
// (the paper's index tie-break).
package wfsort

import (
	"cmp"
	"fmt"
	"runtime"
	"sync"

	"wfsort/internal/core"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/obs"
	"wfsort/internal/pool"
	"wfsort/internal/pram"
	"wfsort/internal/sizeclass"
	"wfsort/internal/xrand"
)

// Variant selects which of the paper's algorithms runs.
type Variant int

// Algorithm variants.
const (
	// Deterministic is the Section 2 algorithm with deterministic
	// work-assignment trees. Fastest in practice; its pivot tree
	// degenerates on already-sorted inputs.
	Deterministic Variant = iota
	// Randomized is the Section 2 algorithm with the §2.3 randomized
	// work allocation: the pivot tree is O(log N) deep w.h.p. for any
	// input order. The default.
	Randomized
	// LowContention is the Section 3 algorithm: sqrt(P) processor
	// groups, winner selection and a duplicated fat tree cut memory
	// contention from O(P) to O(sqrt(P)). It needs at least 4 workers
	// and N >= P; below that it falls back to Randomized.
	LowContention
)

// String returns the variant's mnemonic.
func (v Variant) String() string {
	switch v {
	case Deterministic:
		return "deterministic"
	case Randomized:
		return "randomized"
	case LowContention:
		return "lowcontention"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Layout selects how Sort and SortFunc place shared state in memory
// and hand out work on the native (real-goroutine) runtime. The
// simulator ignores it: Simulate always runs the paper-faithful dense
// layout, so simulated step counts and contention never depend on this
// option.
type Layout int

// Native arena layouts.
const (
	// LayoutSharded is the contention-sharded fast path and the
	// default: cache-line padded hot words, work claimed in blocks so
	// the work-assignment trees' root traffic is amortized, sharded
	// miss/completion counters that aggregate on read, no accounting
	// key reads, and the output scatter done host-side. Fastest; same
	// wait-freedom and crash tolerance as the paper's algorithm.
	LayoutSharded Layout = iota
	// LayoutPadded keeps the paper's per-element claims and operation
	// sequence but aligns structures to cache lines and pads hot words
	// (work-tree tops, the pivot root, counter shards).
	LayoutPadded
	// LayoutFlat is the dense simulator layout run as-is on hardware —
	// the seed behavior, kept as the benchmark baseline.
	LayoutFlat
)

// String returns the layout's mnemonic.
func (l Layout) String() string {
	switch l {
	case LayoutSharded:
		return "sharded"
	case LayoutPadded:
		return "padded"
	case LayoutFlat:
		return "flat"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Layouts lists every native arena layout, fastest first.
func Layouts() []Layout { return []Layout{LayoutSharded, LayoutPadded, LayoutFlat} }

// Metrics re-exports the run cost report shared by both runtimes.
type Metrics = model.Metrics

// Observer re-exports the wait-free observability plane for the native
// runtime: per-incarnation event rings, phase-latency histograms, a
// Chrome/Perfetto trace exporter (WriteTrace) and a live Snapshot for
// metrics endpoints. Create one per sort with NewObserver, install it
// with WithObserver, and read it after SortFunc returns. Recording is
// wait-free: each goroutine writes only its own preallocated ring, so
// an installed observer never introduces a wait point.
type Observer = obs.Observer

// NewObserver returns an observability plane with default sizing,
// ready to install on one sort via WithObserver.
func NewObserver() *Observer { return obs.New(obs.Config{}) }

// Bits recording which options were set explicitly, so pool-backed
// sorters can reject options that conflict with the pool's fixed
// configuration instead of silently ignoring them.
const (
	setWorkers = 1 << iota
	setVariant
	setLayout
	setSeed
	setObserver
	setSchedule
	setChurn
	setCrashes
	setPool
	setPipeline
	setQueuePolicy
)

type config struct {
	workers     int
	variant     Variant
	layout      Layout
	seed        uint64
	sched       pram.Scheduler     // simulation only
	observer    *obs.Observer      // native only
	churnKills  int                // native only: kill+revive every non-zero worker
	crashFrac   float64            // native only: fail-stop a seeded fraction
	crashWindow int64              // op-ordinal window for crashFrac strikes
	pool        *Pool              // NewSorter only
	pipeDepth   int                // NewPool/NewSorter only: phase-pipelined crew depth
	queuePolicy native.QueuePolicy // NewPool/NewSorter only: pipeline queue order
	explicit    int                // set* bits
}

// Option customizes a sort or simulation.
type Option func(*config)

// WithWorkers sets the number of parallel workers (goroutines, or
// simulated processors). Defaults to GOMAXPROCS, capped at the input
// size.
func WithWorkers(p int) Option {
	return func(c *config) { c.workers = p; c.explicit |= setWorkers }
}

// WithVariant selects the algorithm variant. Defaults to Randomized.
func WithVariant(v Variant) Option {
	return func(c *config) { c.variant = v; c.explicit |= setVariant }
}

// WithLayout selects the native arena layout (see Layout). Defaults to
// LayoutSharded. Simulation only ever uses the dense paper layout;
// Simulate ignores this option.
func WithLayout(l Layout) Option {
	return func(c *config) { c.layout = l; c.explicit |= setLayout }
}

// WithSeed fixes the seed behind all randomized choices, making
// simulator runs exactly reproducible. Defaults to 0.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed; c.explicit |= setSeed }
}

// WithObserver installs an observability plane on the native run (see
// Observer). Like the sort runtime itself, one Observer drives at most
// one sort. When nil (the default) the recording hook costs a single
// pointer compare per operation. Native only; Simulate ignores it —
// the simulator's exact metrics come from the machine itself.
func WithObserver(o *Observer) Option {
	return func(c *config) { c.observer = o; c.explicit |= setObserver }
}

// WithSchedule sets the simulated schedule: asynchrony models,
// adversaries and crash injection, built with the constructors in
// wfsort/sim. Simulation only; Sort ignores it. Defaults to the
// faultless synchronous schedule.
func WithSchedule(s pram.Scheduler) Option {
	return func(c *config) { c.sched = s; c.explicit |= setSchedule }
}

// WithChurn kills every worker except worker 0 `kills` times per sort,
// at staggered operation ordinals, reviving each one — the sort always
// completes, having survived (workers-1)*kills mid-flight failures.
// This is the soak-test fault plane: wait-freedom makes the injected
// deaths invisible in the output. Native sorts only; Simulate rejects
// it (use WithSchedule for simulated faults).
func WithChurn(kills int) Option {
	return func(c *config) { c.churnKills = kills; c.explicit |= setChurn }
}

// WithCrashes fail-stops a seeded random fraction of the workers —
// never worker 0, so the sort still completes — at operation ordinals
// drawn from [1, window]; window <= 0 means 64. Crashed workers stay
// dead for the rest of that sort. On a pooled Sorter the workers'
// goroutines survive the unwind, so every sort faces the same fraction
// afresh: the "crash-half" serving regime of EXPERIMENTS.md E22.
// Native sorts only; Simulate rejects it.
func WithCrashes(frac float64, window int64) Option {
	return func(c *config) {
		c.crashFrac = frac
		c.crashWindow = window
		c.explicit |= setCrashes
	}
}

// WithPipeline routes a pool's queued sorts through one resident
// phase-pipelined crew instead of per-sort serial teams: a worker that
// finishes sort k moves straight to sort k+1, gated only by every
// worker having cleared phase 1 of sort k, so the crew never idles
// behind its slowest member at a job boundary. depth bounds how many
// sorts may queue per worker beyond the one in flight; depth < 1 means
// 1. Pools and pooled sorters only — one-shot Sort/SortFunc and
// Simulate have exactly one job, so there is nothing to pipeline and
// they reject the option.
func WithPipeline(depth int) Option {
	return func(c *config) {
		if depth < 1 {
			depth = 1
		}
		c.pipeDepth = depth
		c.explicit |= setPipeline
	}
}

// applyOptions folds opts over the defaults and validates everything
// that does not depend on the input size.
func applyOptions(opts []Option) (config, error) {
	c := config{workers: runtime.GOMAXPROCS(0), variant: Randomized}
	for _, o := range opts {
		o(&c)
	}
	if c.workers < 1 {
		return c, fmt.Errorf("wfsort: workers must be >= 1, got %d", c.workers)
	}
	if c.layout < LayoutSharded || c.layout > LayoutFlat {
		return c, fmt.Errorf("wfsort: unknown layout %v", c.layout)
	}
	if c.churnKills < 0 {
		return c, fmt.Errorf("wfsort: churn kills must be >= 0, got %d", c.churnKills)
	}
	if c.crashFrac < 0 || c.crashFrac > 1 {
		return c, fmt.Errorf("wfsort: crash fraction must be in [0,1], got %g", c.crashFrac)
	}
	return c, nil
}

func buildConfig(n int, opts []Option) (config, error) {
	c, err := applyOptions(opts)
	if err != nil {
		return c, err
	}
	if c.pool != nil {
		return c, fmt.Errorf("wfsort: WithPool applies to NewSorter, not one-shot sorts")
	}
	if c.explicit&setPipeline != 0 {
		return c, fmt.Errorf("wfsort: WithPipeline applies to NewPool/NewSorter, not one-shot sorts")
	}
	if c.explicit&setQueuePolicy != 0 {
		return c, fmt.Errorf("wfsort: WithQueuePolicy applies to NewPool/NewSorter, not one-shot sorts")
	}
	if c.workers > n {
		c.workers = n // P <= N is the paper's regime; extra workers idle anyway
	}
	return c, nil
}

// adversary builds the per-sort fault plane requested by WithChurn and
// WithCrashes; nil when neither is set. seq varies the crash draw from
// sort to sort on a pooled Sorter.
func (c config) adversary(seq uint64) model.Adversary {
	if c.churnKills <= 0 && c.crashFrac <= 0 {
		return nil
	}
	pl := native.NewPlan()
	if c.churnKills > 0 {
		for pid := 1; pid < c.workers; pid++ {
			for k := 0; k < c.churnKills; k++ {
				// Low, staggered ordinals: even on one CPU a worker that
				// arrives to find all work done has executed a few ops.
				pl.KillAt(pid, int64(2+3*pid+17*k))
			}
			pl.Revive(pid, c.churnKills)
		}
	}
	if c.crashFrac > 0 {
		window := c.crashWindow
		if window <= 0 {
			window = 64
		}
		rng := xrand.New(c.seed ^ (seq+1)*0x9e3779b97f4a7c15)
		for pid := 1; pid < c.workers; pid++ {
			if rng.Float64() < c.crashFrac {
				pl.KillAt(pid, 1+int64(rng.Intn(int(window))))
			}
		}
	}
	return pl
}

// nativeArena builds the allocator and fast-path tuning for one native
// sort. Only SortFunc calls it; Simulate always lays out on the dense
// model.Arena with zero tuning, which is what keeps simulated metrics
// independent of this whole mechanism.
func nativeArena(n int, c config) (model.Allocator, core.Tuning) {
	switch c.layout {
	case LayoutFlat:
		return &model.Arena{}, core.Tuning{}
	case LayoutPadded:
		return native.NewArena(native.Padded), core.Tuning{}
	default: // LayoutSharded
		// sizeclass.Batch picks the work-claim granularity: large enough
		// to amortize next_element traffic, small enough that every
		// worker still sees a few blocks to claim (wait-freedom never
		// depends on the choice — a block is a bigger idempotent job).
		// It is shared with the pooled serving layer so arena sizing and
		// batch sizing can never drift apart.
		return native.NewArena(native.Padded), core.Tuning{
			Batch:       sizeclass.Batch(n, c.workers),
			SkipKeyRead: true,
			Shards:      min(c.workers, 8),
			HostShuffle: true,
		}
	}
}

// Sort sorts data in place using wait-free parallel workers. It is
// stable. The zero-length and single-element cases return immediately.
func Sort[E cmp.Ordered](data []E, opts ...Option) error {
	return SortFunc(data, func(a, b E) bool { return a < b }, opts...)
}

// SortFunc sorts data in place by the given strict ordering, using
// wait-free parallel workers. Ties are broken by original position, so
// the sort is stable. less must be a strict weak ordering; it is called
// concurrently and must be safe for concurrent use on immutable data.
func SortFunc[E any](data []E, less func(a, b E) bool, opts ...Option) error {
	n := len(data)
	if n < 2 {
		return nil
	}
	c, err := buildConfig(n, opts)
	if err != nil {
		return err
	}
	return sortOnce(data, less, c)
}

// sortOnce is the one-shot native sort: fresh arena, fresh goroutines.
// SortFunc and the pooled Sorter's small-input path both end here.
func sortOnce[E any](data []E, less func(a, b E) bool, c config) error {
	n := len(data)
	input := make([]E, n)
	copy(input, data)
	idxLess := func(i, j int) bool {
		a, b := input[i-1], input[j-1]
		if less(a, b) {
			return true
		}
		if less(b, a) {
			return false
		}
		return i < j
	}

	a, tun := nativeArena(n, c)
	runner, err := newRunner(a, n, c, tun)
	if err != nil {
		return err
	}
	rt := native.New(native.Config{
		P: c.workers, Mem: a.Size(), Seed: c.seed, Less: idxLess,
		Observer: c.observer, Adversary: c.adversary(0),
	})
	runner.seed(rt.Memory())
	if _, err := rt.Run(runner.program()); err != nil {
		return err
	}
	places := runner.places(rt.Memory())
	if c.churnKills > 0 || c.crashFrac > 0 {
		// Worker 0 is never a fault target, so completion is guaranteed;
		// this guards the invariant rather than an expected failure.
		for i, r := range places {
			if r < 1 || r > n {
				return fmt.Errorf("wfsort: sort incomplete (element %d unranked)", i+1)
			}
		}
	}
	applyPermutation(data, input, places, c.workers)
	return nil
}

// applyPermutation moves input[i] to data[places[i]-1], in parallel
// chunks for large inputs (the scatter is the only sequential tail of
// the sort, so it is worth spreading across the same workers).
func applyPermutation[E any](data, input []E, places []int, workers int) {
	const chunk = 16 * 1024
	n := len(input)
	if n < 2*chunk || workers < 2 {
		for i, r := range places {
			data[r-1] = input[i]
		}
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				data[places[i]-1] = input[i]
			}
		}(lo, hi)
	}
	wg.Wait()
}

// SimResult reports one simulated sort.
type SimResult struct {
	// Ranks holds each input element's final 1-based rank.
	Ranks []int
	// Metrics is the exact cost accounting: steps, operations, maximum
	// per-variable contention, stalls, per-phase breakdown.
	Metrics *Metrics
	// TreeDepth is the depth of the pivot tree the run built.
	TreeDepth int
}

// Simulate runs the sort on the deterministic CRCW PRAM simulator and
// returns the ranks together with exact cost metrics. keys supply the
// ordering (ties broken by index); the input is not modified.
func Simulate(keys []int, opts ...Option) (*SimResult, error) {
	n := len(keys)
	if n == 0 {
		return &SimResult{Metrics: &Metrics{}}, nil
	}
	c, err := buildConfig(n, opts)
	if err != nil {
		return nil, err
	}
	if c.churnKills > 0 || c.crashFrac > 0 {
		return nil, fmt.Errorf("wfsort: WithChurn/WithCrashes are native-only; simulate faults with WithSchedule")
	}
	less := func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
	var a model.Arena
	runner, err := newRunner(&a, n, c, core.Tuning{})
	if err != nil {
		return nil, err
	}
	m := pram.New(pram.Config{P: c.workers, Mem: a.Size(), Seed: c.seed, Sched: c.sched, Less: less})
	runner.seed(m.Memory())
	met, err := m.Run(runner.program())
	if err != nil {
		return nil, err
	}
	return &SimResult{
		Ranks:     runner.places(m.Memory()),
		Metrics:   met,
		TreeDepth: runner.depth(m.Memory()),
	}, nil
}

// runner abstracts over the two sorter layouts.
type runner struct {
	core *core.Sorter
	lc   *lowcont.Sorter
}

func newRunner(a model.Allocator, n int, c config, tun core.Tuning) (runner, error) {
	switch c.variant {
	case Deterministic:
		return runner{core: core.NewSorterTuned(a, n, core.AllocWAT, tun)}, nil
	case Randomized:
		return runner{core: core.NewSorterTuned(a, n, core.AllocRandomized, tun)}, nil
	case LowContention:
		if c.workers < 4 || n < c.workers {
			// Below the §3 regime the deterministic contention bound
			// O(P) is small anyway; fall back to the Section 2 sort.
			return runner{core: core.NewSorterTuned(a, n, core.AllocRandomized, tun)}, nil
		}
		// The §3 research variant keeps the paper's own contention
		// machinery; of the Section 2 fast-path tuning it takes only the
		// batched work-claim granularity (glue/shuffle LC-WAT jobs span
		// Batch elements), which composes with the paper's machinery
		// without altering it. Zero tuning (simulator, flat/padded
		// layouts) means batch 1, the paper-faithful granularity.
		return runner{lc: lowcont.NewTuned(a, n, c.workers, tun.Batch)}, nil
	default:
		return runner{}, fmt.Errorf("wfsort: unknown variant %v", c.variant)
	}
}

func (r runner) seed(mem []model.Word) {
	if r.core != nil {
		r.core.Seed(mem)
	} else {
		r.lc.Seed(mem)
	}
}

func (r runner) program() model.Program {
	if r.core != nil {
		return r.core.Program()
	}
	return r.lc.Program()
}

func (r runner) places(mem []model.Word) []int {
	if r.core != nil {
		return r.core.Places(mem)
	}
	return r.lc.Places(mem)
}

func (r runner) depth(mem []model.Word) int {
	if r.core != nil {
		return r.core.Depth(mem)
	}
	return r.lc.Depth(mem)
}

// asPoolRunner exposes the underlying sorter through the pooling
// layer's Runner interface (both sorters satisfy it directly).
func (r runner) asPoolRunner() pool.Runner {
	if r.core != nil {
		return r.core
	}
	return r.lc
}
