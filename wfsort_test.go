package wfsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"wfsort/internal/pram"
)

func TestSortInts(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 10, 100, 1000, 10000} {
		data := make([]int, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range data {
			data[i] = rng.Intn(1000)
		}
		want := make([]int, n)
		copy(want, data)
		sort.Ints(want)
		if err := Sort(data); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("n=%d: data[%d] = %d, want %d", n, i, data[i], want[i])
			}
		}
	}
}

func TestSortStrings(t *testing.T) {
	data := []string{"pear", "apple", "fig", "banana", "apple", ""}
	if err := Sort(data); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(data) {
		t.Errorf("not sorted: %v", data)
	}
}

func TestSortFloats(t *testing.T) {
	data := []float64{3.2, -1, 0, 99.5, -7.25, 0}
	if err := Sort(data); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(data) {
		t.Errorf("not sorted: %v", data)
	}
}

func TestSortFuncIsStable(t *testing.T) {
	type pair struct{ key, tag int }
	const n = 500
	data := make([]pair, n)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = pair{key: rng.Intn(10), tag: i}
	}
	if err := SortFunc(data, func(a, b pair) bool { return a.key < b.key }); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if data[i-1].key > data[i].key {
			t.Fatalf("not sorted at %d", i)
		}
		if data[i-1].key == data[i].key && data[i-1].tag > data[i].tag {
			t.Fatalf("stability violated at %d: tags %d, %d", i, data[i-1].tag, data[i].tag)
		}
	}
}

func TestSortAllVariants(t *testing.T) {
	for _, v := range []Variant{Deterministic, Randomized, LowContention} {
		data := make([]int, 2000)
		rng := rand.New(rand.NewSource(int64(v)))
		for i := range data {
			data[i] = rng.Intn(5000)
		}
		if err := Sort(data, WithVariant(v), WithWorkers(8), WithSeed(42)); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !sort.IntsAreSorted(data) {
			t.Errorf("%v: not sorted", v)
		}
	}
}

func TestSortSortedInputAllVariants(t *testing.T) {
	// Pre-sorted input is the adversarial case for the deterministic
	// pivot tree; all variants must still be correct.
	for _, v := range []Variant{Deterministic, Randomized, LowContention} {
		data := make([]int, 1500)
		for i := range data {
			data[i] = i
		}
		if err := Sort(data, WithVariant(v), WithWorkers(6)); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !sort.IntsAreSorted(data) {
			t.Errorf("%v: not sorted", v)
		}
	}
}

func TestSortWorkerCounts(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 32, 1000, 100000} {
		data := make([]int, 300)
		rng := rand.New(rand.NewSource(int64(p)))
		for i := range data {
			data[i] = rng.Intn(100)
		}
		if err := Sort(data, WithWorkers(p)); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !sort.IntsAreSorted(data) {
			t.Errorf("p=%d: not sorted", p)
		}
	}
}

func TestSortRejectsBadWorkers(t *testing.T) {
	if err := Sort([]int{3, 1, 2}, WithWorkers(0)); err == nil {
		t.Error("workers=0 accepted")
	}
	if err := Sort([]int{3, 1, 2}, WithWorkers(-5)); err == nil {
		t.Error("negative workers accepted")
	}
}

func TestSortUnknownVariant(t *testing.T) {
	if err := Sort([]int{3, 1, 2}, WithVariant(Variant(99))); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(data []int16, workers uint8) bool {
		d := make([]int, len(data))
		for i, v := range data {
			d[i] = int(v)
		}
		p := int(workers)%16 + 1
		if err := Sort(d, WithWorkers(p)); err != nil {
			return false
		}
		return sort.IntsAreSorted(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateMetrics(t *testing.T) {
	keys := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	res, err := Simulate(keys, WithWorkers(4), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Steps == 0 || res.Metrics.Ops == 0 {
		t.Error("metrics empty")
	}
	if res.TreeDepth < 1 {
		t.Errorf("tree depth %d", res.TreeDepth)
	}
	// keys are 0..9 shuffled: element i's rank is keys[i-1]+1.
	for i, r := range res.Ranks {
		if r != keys[i]+1 {
			t.Errorf("element %d rank %d, want %d", i+1, r, keys[i]+1)
		}
	}
}

func TestSimulateEmpty(t *testing.T) {
	res, err := Simulate(nil)
	if err != nil || len(res.Ranks) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
}

func TestSimulateWithCrashes(t *testing.T) {
	keys := make([]int, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = rng.Intn(500)
	}
	crashes := pram.RandomCrashes(16, 0.5, 100, 11)
	kept := crashes[:0]
	for _, c := range crashes {
		if c.PID != 0 {
			kept = append(kept, c)
		}
	}
	res, err := Simulate(keys,
		WithWorkers(16),
		WithVariant(LowContention),
		WithSchedule(pram.WithCrashes(pram.Synchronous(), kept)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Killed == 0 {
		t.Error("no processors were killed")
	}
	// Ranks must still be the true ranks.
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	for pos, i := range idx {
		if res.Ranks[i] != pos+1 {
			t.Fatalf("element %d rank %d, want %d", i+1, res.Ranks[i], pos+1)
		}
	}
}

func TestSimulateLowContentionBeatsDeterministic(t *testing.T) {
	keys := make([]int, 256)
	rng := rand.New(rand.NewSource(5))
	for i := range keys {
		keys[i] = rng.Intn(1000)
	}
	det, err := Simulate(keys, WithWorkers(256), WithVariant(Deterministic))
	if err != nil {
		t.Fatal(err)
	}
	lc, err := Simulate(keys, WithWorkers(256), WithVariant(LowContention))
	if err != nil {
		t.Fatal(err)
	}
	if lc.Metrics.MaxContention*4 > det.Metrics.MaxContention {
		t.Errorf("lowcontention %d vs deterministic %d: expected a clear gap",
			lc.Metrics.MaxContention, det.Metrics.MaxContention)
	}
}

func TestVariantString(t *testing.T) {
	if Deterministic.String() != "deterministic" || LowContention.String() != "lowcontention" {
		t.Error("variant names wrong")
	}
}

func TestSortLargeUsesParallelPermute(t *testing.T) {
	// Exercise the chunked scatter path (n above the parallel-permute
	// threshold) and an off-boundary size.
	for _, n := range []int{1 << 15, 1<<15 + 7} {
		data := make([]int, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range data {
			data[i] = rng.Intn(1 << 20)
		}
		if err := Sort(data, WithWorkers(4)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !sort.IntsAreSorted(data) {
			t.Fatalf("n=%d: not sorted", n)
		}
	}
}

// TestSortLayoutsProperty is the cross-layout property test: for every
// native arena layout × algorithm variant × input shape, SortFunc must
// produce exactly what sort.SliceStable produces. Records carry unique
// tags, so element-wise equality simultaneously proves sortedness,
// stability and that the output is a permutation of the input.
func TestSortLayoutsProperty(t *testing.T) {
	type rec struct{ key, tag int }
	const n = 2500
	inputs := map[string]func(i int, rng *rand.Rand) int{
		"random":   func(_ int, rng *rand.Rand) int { return rng.Intn(n) },
		"dupheavy": func(_ int, rng *rand.Rand) int { return rng.Intn(7) },
		"sorted":   func(i int, _ *rand.Rand) int { return i },
		"reverse":  func(i int, _ *rand.Rand) int { return n - i },
	}
	for _, layout := range Layouts() {
		for _, v := range []Variant{Deterministic, Randomized, LowContention} {
			for name, gen := range inputs {
				t.Run(layout.String()+"/"+v.String()+"/"+name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(v)<<8 + int64(layout)))
					data := make([]rec, n)
					for i := range data {
						data[i] = rec{key: gen(i, rng), tag: i}
					}
					want := make([]rec, n)
					copy(want, data)
					sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
					err := SortFunc(data, func(a, b rec) bool { return a.key < b.key },
						WithLayout(layout), WithVariant(v), WithWorkers(6), WithSeed(uint64(layout)+1))
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if data[i] != want[i] {
							t.Fatalf("position %d: got %+v, want %+v", i, data[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestSortDegenerateInputsAllLayouts pins the edge cases the pivot
// tree and scatter paths can mishandle — empty, singleton, pair and
// all-equal inputs — on every layout × variant, against the
// sort.SliceStable reference. Unique tags make element-wise equality
// prove stability too (an all-equal input is the pure stability test:
// the "sorted" output must be the input, untouched).
func TestSortDegenerateInputsAllLayouts(t *testing.T) {
	type rec struct{ key, tag int }
	inputs := map[string][]int{
		"empty":     {},
		"single":    {7},
		"pair":      {9, 2},
		"pairequal": {4, 4},
		"allequal":  {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
	}
	for _, layout := range Layouts() {
		for _, v := range []Variant{Deterministic, Randomized, LowContention} {
			for name, keys := range inputs {
				t.Run(layout.String()+"/"+v.String()+"/"+name, func(t *testing.T) {
					data := make([]rec, len(keys))
					for i, k := range keys {
						data[i] = rec{key: k, tag: i}
					}
					want := make([]rec, len(data))
					copy(want, data)
					sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
					err := SortFunc(data, func(a, b rec) bool { return a.key < b.key },
						WithLayout(layout), WithVariant(v), WithWorkers(4))
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if data[i] != want[i] {
							t.Fatalf("position %d: got %+v, want %+v", i, data[i], want[i])
						}
					}
				})
			}
		}
	}
}

func TestSortPreservesMultisets(t *testing.T) {
	// The output must be a permutation of the input, not just sorted —
	// catches any lost or duplicated element in the scatter.
	const n = 40_000
	data := make([]int, n)
	rng := rand.New(rand.NewSource(9))
	before := map[int]int{}
	for i := range data {
		data[i] = rng.Intn(50) // heavy duplication
		before[data[i]]++
	}
	if err := Sort(data, WithWorkers(6), WithVariant(LowContention)); err != nil {
		t.Fatal(err)
	}
	after := map[int]int{}
	for _, v := range data {
		after[v]++
	}
	for k, c := range before {
		if after[k] != c {
			t.Fatalf("value %d: count %d before, %d after", k, c, after[k])
		}
	}
	if !sort.IntsAreSorted(data) {
		t.Fatal("not sorted")
	}
}
