// Command chaos sweeps adversary policies across worker counts and
// native arena layouts, certifying every run against the wait-freedom
// op ceiling and cross-checking seeded crash schedules between the
// simulator and the native runtime (see internal/chaos). It prints a
// human-readable table to stderr, emits the full JSON report to stdout
// (or -out FILE), and exits non-zero if any run failed to sort or to
// certify.
//
// Usage:
//
//	chaos [-n 4096] [-p 2,4,8] [-seed 1] [-quick] [-out FILE] [-trace-out FILE]
//
// -trace-out arms the observability plane on the native runs: if a run
// fails certification, its Chrome/Perfetto trace (per-incarnation
// tracks, phase spans, kill/stall instants) is written to FILE for
// post-mortem in ui.perfetto.dev. Nothing is written when the sweep is
// clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"wfsort/internal/chaos"
)

func main() {
	if err := run(os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run(out, log io.Writer, args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(log)
	n := fs.Int("n", 0, "input size (default 4096, or 1024 with -quick)")
	ps := fs.String("p", "", "comma-separated worker counts (default 2,4,8, or 2,8 with -quick)")
	seed := fs.Uint64("seed", 1, "seed for keys, algorithm randomness and crash schedules")
	quick := fs.Bool("quick", false, "reduced sweep for CI smoke")
	outPath := fs.String("out", "", "write the JSON report to this file instead of stdout")
	traceOut := fs.String("trace-out", "", "write a Perfetto trace of the first failing native run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := chaos.SweepOptions{N: *n, Seed: *seed, Quick: *quick, TraceOut: *traceOut}
	if *ps != "" {
		parsed, err := parsePs(*ps)
		if err != nil {
			return err
		}
		opts.Ps = parsed
	}

	rep, err := chaos.Sweep(opts)
	if err != nil {
		return err
	}
	printTable(log, rep)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(out, string(b))
	}

	if !rep.OK {
		if rep.TracePath != "" {
			fmt.Fprintf(log, "perfetto trace of first failure written to %s\n", rep.TracePath)
		}
		return fmt.Errorf("%d run(s) failed certification", len(rep.Failures))
	}
	fmt.Fprintf(log, "chaos sweep ok: %d runs certified, %d differentials identical (n=%d seed=%d)\n",
		len(rep.Runs), len(rep.Differential), rep.N, rep.Seed)
	return nil
}

func parsePs(s string) ([]int, error) {
	var ps []int
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("invalid worker count %q in -p", f)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

func printTable(w io.Writer, rep *chaos.Report) {
	fmt.Fprintf(w, "%-18s %-8s %3s %7s %8s %5s %8s %10s %6s  %s\n",
		"policy", "layout", "p", "killed", "respawns", "surv", "maxops", "bound", "ratio", "status")
	for _, r := range rep.Runs {
		status := "ok"
		if !r.OK() {
			status = "FAIL"
			if r.Error != "" {
				status += " " + r.Error
			}
		}
		fmt.Fprintf(w, "%-18s %-8s %3d %7d %8d %5d %8d %10d %6.3f  %s\n",
			r.Policy, r.Layout, r.P, r.Killed, r.Respawns, r.Survivors,
			r.MaxOps, r.Bound, float64(r.MaxOps)/float64(r.Bound), status)
	}
	for _, d := range rep.Differential {
		fmt.Fprintln(w, "differential", d)
	}
	for _, f := range rep.Failures {
		fmt.Fprintln(w, "FAILURE:", f)
	}
}
