package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wfsort/internal/chaos"
)

// TestRunQuickSweep drives the CLI end to end on a tiny matrix and
// checks the JSON report parses and is clean.
func TestRunQuickSweep(t *testing.T) {
	var out, log bytes.Buffer
	err := run(&out, &log, []string{"-n", "256", "-p", "2,4", "-seed", "3"})
	if err != nil {
		t.Fatalf("run: %v\nlog:\n%s", err, log.String())
	}
	var rep chaos.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v", err)
	}
	if !rep.OK {
		t.Fatalf("report not OK: %v", rep.Failures)
	}
	if len(rep.Runs) == 0 || len(rep.Differential) != 2 {
		t.Errorf("report shape: %d runs, %d differentials (want >0, 2)", len(rep.Runs), len(rep.Differential))
	}
	if !strings.Contains(log.String(), "chaos sweep ok") {
		t.Errorf("log missing success line:\n%s", log.String())
	}
}

// TestRunWritesReportFile checks -out writes the report instead of
// printing it.
func TestRunWritesReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.json")
	var out, log bytes.Buffer
	if err := run(&out, &log, []string{"-n", "256", "-p", "2", "-out", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty with -out: %q", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report file: %v", err)
	}
	var rep chaos.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report file is not JSON: %v", err)
	}
}

// TestRunTraceOutCleanSweep passes -trace-out through a clean sweep:
// the flag must parse and no trace may be written (it is a failure
// postmortem; internal/chaos tests cover the failing case).
func TestRunTraceOutCleanSweep(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "fail-trace.json")
	var out, log bytes.Buffer
	if err := run(&out, &log, []string{"-n", "256", "-p", "2", "-trace-out", tracePath}); err != nil {
		t.Fatalf("run: %v\nlog:\n%s", err, log.String())
	}
	if _, err := os.Stat(tracePath); !os.IsNotExist(err) {
		t.Errorf("clean sweep wrote a failure trace (stat err = %v)", err)
	}
	var rep chaos.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v", err)
	}
	if rep.TracePath != "" {
		t.Errorf("report TracePath = %q on a clean sweep", rep.TracePath)
	}
}

func TestParsePs(t *testing.T) {
	ps, err := parsePs("2, 4,8")
	if err != nil {
		t.Fatalf("parsePs: %v", err)
	}
	if len(ps) != 3 || ps[0] != 2 || ps[1] != 4 || ps[2] != 8 {
		t.Errorf("ps = %v, want [2 4 8]", ps)
	}
	for _, bad := range []string{"", "x", "0", "-1", "2,,4"} {
		if _, err := parsePs(bad); err == nil {
			t.Errorf("parsePs(%q) accepted, want error", bad)
		}
	}
}
