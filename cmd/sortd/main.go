// Command sortd serves wait-free sorts over HTTP: the pooled
// wfsort.Sorter behind internal/server's admission queue, batcher and
// drain logic.
//
//	sortd -addr :8080 -workers 4
//
// Endpoints: POST /sort, GET /healthz, /metrics (?format=prom),
// /requests, /trace/{id}, /obs/ (expvar + pprof). SIGINT/SIGTERM
// starts a graceful drain: in-flight requests finish, new ones get
// 503, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wfsort"
	"wfsort/internal/qos"
	"wfsort/internal/server"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sortd:", err)
		os.Exit(1)
	}
}

// run is the whole daemon behind a testable seam: ctx cancellation
// doubles as a signal, and ready (when non-nil) receives the bound
// address once the listener is up.
func run(ctx context.Context, args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("sortd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 0, "sort workers per team (0 = GOMAXPROCS)")
		variant     = fs.String("variant", "randomized", "deterministic | randomized | lowcontention")
		seed        = fs.Uint64("seed", 0, "base seed for randomized choices")
		maxInflight = fs.Int("max-inflight", 64, "admitted requests before 429")
		maxKeys     = fs.Int("max-keys", 0, "request size limit before 413 (0 = largest pool class)")
		batchKeys   = fs.Int("batch-keys", 256, "batch requests of at most this many keys (-1 disables)")
		batchWindow = fs.Duration("batch-window", 500*time.Microsecond, "how long a batch waits for company")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-request deadline")
		drainWait   = fs.Duration("drain-timeout", 30*time.Second, "graceful drain limit on shutdown")
		pipeline    = fs.Int("pipeline", 0, "phase-pipeline queued sorts through one crew with this queue depth (0 = serial teams)")
		churn       = fs.Int("churn", 0, "kill+revive every non-zero worker this many times per sort")
		crashFrac   = fs.Float64("crash-frac", 0, "fail-stop this fraction of workers per sort (chaos mode)")
		qosPath     = fs.String("qos", "", "QoS config JSON: per-class token buckets, priorities, deadlines (see internal/qos)")
		slo         = fs.Duration("slo", 0, "p99 latency objective; enables the multi-window SLO burn-rate monitor (0 = off)")
		flightDir   = fs.String("flight-dir", "", "arm the flight recorder: incident dumps (spans+exemplars+metrics+Perfetto) land here on an SLO page or watchdog verdict")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var qosCfg *qos.Config
	if *qosPath != "" {
		b, err := os.ReadFile(*qosPath)
		if err != nil {
			return err
		}
		if qosCfg, err = qos.ParseConfig(b); err != nil {
			return err
		}
	}

	var opts []wfsort.Option
	switch *variant {
	case "deterministic":
		opts = append(opts, wfsort.WithVariant(wfsort.Deterministic))
	case "randomized":
		// the default; selecting it explicitly would trip the WithPool
		// conflict check for nothing
	case "lowcontention":
		opts = append(opts, wfsort.WithVariant(wfsort.LowContention))
	default:
		return fmt.Errorf("unknown -variant %q", *variant)
	}
	if *seed != 0 {
		opts = append(opts, wfsort.WithSeed(*seed))
	}
	if *churn > 0 {
		opts = append(opts, wfsort.WithChurn(*churn))
	}
	if *crashFrac > 0 {
		opts = append(opts, wfsort.WithCrashes(*crashFrac, 0))
	}

	srv, err := server.New(server.Config{
		Workers:       *workers,
		Options:       opts,
		PipelineDepth: *pipeline,
		MaxInFlight:   *maxInflight,
		MaxKeys:       *maxKeys,
		BatchMaxKeys:  *batchKeys,
		BatchWindow:   *batchWindow,
		Timeout:       *timeout,
		QoS:           qosCfg,
		SLO:           *slo,
		FlightDir:     *flightDir,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	qosNote := "off"
	if qosCfg != nil {
		qosNote = fmt.Sprintf("%d classes", len(qosCfg.Classes))
	}
	fmt.Fprintf(out, "sortd: serving on %s (workers=%d variant=%s churn=%d crash-frac=%g qos=%s)\n",
		ln.Addr(), *workers, *variant, *churn, *crashFrac, qosNote)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "sortd: %v — draining\n", sig)
	case <-ctx.Done():
		fmt.Fprintln(out, "sortd: context canceled — draining")
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop accepting first, then drain the sort pipeline: in-flight
	// requests finish, queued batches flush, the pool is released.
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := srv.Stats()
	fmt.Fprintf(out, "sortd: drained (%d requests served, %d batches)\n", st.Requests, st.Batches)
	return nil
}
