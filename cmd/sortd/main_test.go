package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestSortdServesAndDrains boots the daemon on a random port, sorts
// through it, then cancels the context and expects a clean drain.
func TestSortdServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-churn", "1"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("sortd exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("sortd never became ready")
	}

	keys := []int64{9, 2, 7, 2, 5, 1, 9, 0}
	body, _ := json.Marshal(map[string]any{"keys": keys})
	resp, err := http.Post("http://"+addr+"/sort", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Sorted []int64 `json:"sorted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if sr.Sorted[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", sr.Sorted, want)
		}
	}

	if resp, err := http.Get("http://" + addr + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", err, resp)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v (output: %s)", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sortd did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("no drain confirmation in output: %s", out.String())
	}
}

// TestSortdRejectsBadFlags locks the flag validation.
func TestSortdRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-variant", "bogus"}, &out, nil); err == nil {
		t.Fatal("bogus variant accepted")
	}
	if err := run(context.Background(), []string{"-crash-frac", "1.5"}, &out, nil); err == nil {
		t.Fatal("crash fraction above 1 accepted")
	}
}
