package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestSortdServesAndDrains boots the daemon on a random port, sorts
// through it, then cancels the context and expects a clean drain.
func TestSortdServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-churn", "1"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("sortd exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("sortd never became ready")
	}

	keys := []int64{9, 2, 7, 2, 5, 1, 9, 0}
	body, _ := json.Marshal(map[string]any{"keys": keys})
	resp, err := http.Post("http://"+addr+"/sort", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Sorted []int64 `json:"sorted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if sr.Sorted[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", sr.Sorted, want)
		}
	}

	if resp, err := http.Get("http://" + addr + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", err, resp)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v (output: %s)", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sortd did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("no drain confirmation in output: %s", out.String())
	}
}

// TestSortdRejectsBadFlags locks the flag validation.
func TestSortdRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-variant", "bogus"}, &out, nil); err == nil {
		t.Fatal("bogus variant accepted")
	}
	if err := run(context.Background(), []string{"-crash-frac", "1.5"}, &out, nil); err == nil {
		t.Fatal("crash fraction above 1 accepted")
	}
}

// TestSortdQoSFlag boots the daemon with a QoS config file, expects
// the banner to announce the plane, and round-trips a classed sort.
func TestSortdQoSFlag(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "qos.json")
	cfg := `{"classes": [
		{"name": "default", "rate": 1000, "burst": 100, "priority": 1},
		{"name": "lat", "rate": 1000, "burst": 100, "priority": 0}
	]}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-qos", cfgPath}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("sortd exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("sortd never became ready")
	}
	if !strings.Contains(out.String(), "qos=2 classes") {
		t.Fatalf("banner does not announce the qos plane: %s", out.String())
	}

	body, _ := json.Marshal(map[string]any{"keys": []int64{3, 1, 2}})
	req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/sort", bytes.NewReader(body))
	req.Header.Set("X-Sort-Class", "lat")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classed sort status %d", resp.StatusCode)
	}

	// An unconfigured class is a 400, not traffic in disguise.
	req, _ = http.NewRequest(http.MethodPost, "http://"+addr+"/sort", bytes.NewReader(body))
	req.Header.Set("X-Sort-Class", "ghost")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown class status %d, want 400", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v (output: %s)", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sortd did not drain")
	}
}

// TestSortdRejectsBadQoSConfig locks the -qos failure modes: a missing
// file and an invalid config both abort startup with a clear error.
func TestSortdRejectsBadQoSConfig(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-qos", filepath.Join(t.TempDir(), "absent.json")}, &out, nil)
	if err == nil {
		t.Fatal("missing qos config accepted")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"classes": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run(context.Background(), []string{"-qos", bad}, &out, nil)
	if err == nil || !strings.Contains(err.Error(), "classes") {
		t.Fatalf("empty-classes config: err = %v, want a qos config error naming classes", err)
	}
}
