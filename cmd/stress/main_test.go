package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestStressCampaign(t *testing.T) {
	var buf bytes.Buffer
	failures := run(&buf, options{duration: 2 * time.Second, seed: 7, maxN: 64})
	if failures != 0 {
		t.Fatalf("campaign failures:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "stress:") {
		t.Errorf("summary missing:\n%s", out)
	}
	// Both runtimes must show up in the breakdown.
	if !strings.Contains(out, "sim variant=") || !strings.Contains(out, "native variant=") {
		t.Errorf("campaign should mix sim and native runs:\n%s", out)
	}
}

func TestStressVerbose(t *testing.T) {
	var buf bytes.Buffer
	if failures := run(&buf, options{duration: 500 * time.Millisecond, seed: 8, maxN: 32, verbose: true}); failures != 0 {
		t.Fatalf("failures:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ok ") {
		t.Errorf("verbose lines missing:\n%s", buf.String())
	}
}

func TestStressListen(t *testing.T) {
	pr, pw := io.Pipe()
	done := make(chan int, 1)
	go func() {
		var buf bytes.Buffer
		failures := run(io.MultiWriter(pw, &buf), options{
			duration: 2 * time.Second, seed: 9, maxN: 64, listen: "127.0.0.1:0",
		})
		pw.Close()
		done <- failures
	}()

	// The first output line announces the bound address.
	var first string
	if _, err := fmt.Fscanf(pr, "stress: live metrics on %s\n", &first); err != nil {
		t.Fatalf("no listen banner: %v", err)
	}
	go io.Copy(io.Discard, pr)
	m := regexp.MustCompile(`^http://(.*)/metrics$`).FindStringSubmatch(first)
	if m == nil {
		t.Fatalf("unexpected banner %q", first)
	}

	// Poll /metrics while the campaign runs: it must serve either an
	// idle report or a live snapshot with per-processor op ordinals.
	deadline := time.Now().Add(2 * time.Second)
	sawSnapshot := false
	for time.Now().Before(deadline) && !sawSnapshot {
		resp, err := http.Get("http://" + m[1] + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		var body map[string]any
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /metrics: %v", err)
		}
		if _, ok := body["ops_per_proc"]; ok {
			sawSnapshot = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawSnapshot {
		t.Error("never saw a live snapshot on /metrics")
	}
	if failures := <-done; failures != 0 {
		t.Fatalf("campaign failures: %d", failures)
	}
}
