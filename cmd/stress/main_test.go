package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestStressCampaign(t *testing.T) {
	var buf bytes.Buffer
	failures := run(&buf, 2*time.Second, 7, 64, false)
	if failures != 0 {
		t.Fatalf("campaign failures:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "stress:") {
		t.Errorf("summary missing:\n%s", buf.String())
	}
}

func TestStressVerbose(t *testing.T) {
	var buf bytes.Buffer
	if failures := run(&buf, 500*time.Millisecond, 8, 32, true); failures != 0 {
		t.Fatalf("failures:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ok ") {
		t.Errorf("verbose lines missing:\n%s", buf.String())
	}
}
