// Command stress runs a randomized correctness campaign: random input
// sizes, worker counts, input orders, algorithm variants, schedules and
// crash patterns, each run verified against the true ranking. It is the
// long-running confidence builder behind the test suite's fixed cases.
//
// Usage:
//
//	stress [-duration 30s] [-seed 1] [-maxn 512] [-v]
//
// The campaign prints one line per failure (inputs and configuration,
// enough to reproduce) and a summary at the end; the exit status is
// non-zero if any run failed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/harness"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

func main() {
	duration := flag.Duration("duration", 30*time.Second, "how long to run")
	seed := flag.Uint64("seed", 1, "campaign seed")
	maxN := flag.Int("maxn", 512, "largest input size")
	verbose := flag.Bool("v", false, "print every run")
	flag.Parse()

	failures := run(os.Stdout, *duration, *seed, *maxN, *verbose)
	if failures > 0 {
		os.Exit(1)
	}
}

type campaign struct {
	rng     *xrand.Rand
	maxN    int
	runs    int
	byLabel map[string]int
}

func run(w io.Writer, duration time.Duration, seed uint64, maxN int, verbose bool) int {
	c := &campaign{rng: xrand.New(seed), maxN: maxN, byLabel: map[string]int{}}
	deadline := time.Now().Add(duration)
	failures := 0
	for time.Now().Before(deadline) {
		label, err := c.one()
		c.runs++
		c.byLabel[label]++
		if err != nil {
			failures++
			fmt.Fprintf(w, "FAIL %s: %v\n", label, err)
		} else if verbose {
			fmt.Fprintf(w, "ok   %s\n", label)
		}
	}
	fmt.Fprintf(w, "stress: %d runs, %d failures\n", c.runs, failures)
	for label, n := range c.byLabel {
		fmt.Fprintf(w, "  %6d  %s\n", n, label)
	}
	return failures
}

// one executes a single random configuration and verifies it.
func (c *campaign) one() (string, error) {
	n := 1 + c.rng.Intn(c.maxN)
	p := 1 + c.rng.Intn(n)
	input := harness.InputKind(c.rng.Intn(4))
	seed := c.rng.Uint64()
	keys := harness.MakeKeys(input, n, seed)

	variants := []string{"det", "rand", "lowcont"}
	variant := variants[c.rng.Intn(len(variants))]
	if variant == "lowcont" && (p < 4 || n < p) {
		variant = "rand"
	}

	sched, schedName := c.randomSchedule(p, seed)
	label := fmt.Sprintf("variant=%s n=%d p=%d input=%s sched=%s seed=%d",
		variant, n, p, input, schedName, seed)

	var a model.Arena
	var prog model.Program
	var seedFn func([]model.Word)
	var places func([]model.Word) []int
	switch variant {
	case "det":
		s := core.NewSorter(&a, n, core.AllocWAT)
		prog, seedFn, places = s.Program(), s.Seed, s.Places
	case "rand":
		s := core.NewSorter(&a, n, core.AllocRandomized)
		prog, seedFn, places = s.Program(), s.Seed, s.Places
	default:
		s := lowcont.New(&a, n, p)
		prog, seedFn, places = s.Program(), s.Seed, s.Places
	}
	m := pram.New(pram.Config{
		P: p, Mem: a.Size(), Seed: seed, Sched: sched,
		Less: harness.LessFor(keys),
	})
	seedFn(m.Memory())
	if _, err := m.Run(prog); err != nil {
		return label, err
	}
	want := harness.WantRanks(keys)
	got := places(m.Memory())
	for i := range want {
		if got[i] != want[i] {
			return label, fmt.Errorf("element %d placed %d, want %d", i+1, got[i], want[i])
		}
	}
	return label, nil
}

// randomSchedule picks one of the hostile schedules (or none).
func (c *campaign) randomSchedule(p int, seed uint64) (pram.Scheduler, string) {
	switch c.rng.Intn(5) {
	case 0:
		return nil, "synchronous"
	case 1:
		return pram.RandomSubset(0.1 + 0.8*c.rng.Float64()), "randomsubset"
	case 2:
		return pram.RoundRobin(1 + c.rng.Intn(3)), "roundrobin"
	case 3:
		crashes := pram.RandomCrashes(p, 0.3+0.5*c.rng.Float64(), 500, seed)
		kept := crashes[:0]
		for _, cr := range crashes {
			if cr.PID != 0 {
				kept = append(kept, cr)
			}
		}
		return pram.WithCrashes(pram.Synchronous(), kept), "crashes"
	default:
		return pram.NewContentionAdversary(), "adversary"
	}
}
