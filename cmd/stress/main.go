// Command stress runs a randomized correctness campaign: random input
// sizes, worker counts, input orders, algorithm variants, schedules and
// crash patterns, each run verified against the true ranking. Runs are
// split between the deterministic simulator and the native goroutine
// runtime, so the campaign covers both the proof-level machine and the
// real-scheduler implementation. It is the long-running confidence
// builder behind the test suite's fixed cases.
//
// Usage:
//
//	stress [-duration 30s] [-seed 1] [-maxn 512] [-v] [-listen ADDR]
//
// -listen serves the wait-free observability plane while the campaign
// runs: /metrics is the current native run's live snapshot (per-
// processor op ordinals, sized/placed progress, watchdog violations),
// /debug/vars is expvar and /debug/pprof/ the usual profiles.
//
// The campaign prints one line per failure (inputs and configuration,
// enough to reproduce) and a summary at the end; the exit status is
// non-zero if any run failed.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"wfsort/internal/chaos"
	"wfsort/internal/core"
	"wfsort/internal/harness"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/obs"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

func main() {
	o := options{}
	flag.DurationVar(&o.duration, "duration", 30*time.Second, "how long to run")
	flag.Uint64Var(&o.seed, "seed", 1, "campaign seed")
	flag.IntVar(&o.maxN, "maxn", 512, "largest input size")
	flag.BoolVar(&o.verbose, "v", false, "print every run")
	flag.StringVar(&o.listen, "listen", "", "serve live metrics/pprof on this address (e.g. :6060)")
	flag.Parse()

	failures := run(os.Stdout, o)
	if failures > 0 {
		os.Exit(1)
	}
}

type options struct {
	duration time.Duration
	seed     uint64
	maxN     int
	verbose  bool
	listen   string
}

type campaign struct {
	rng     *xrand.Rand
	maxN    int
	runs    int
	byLabel map[string]int
}

func run(w io.Writer, o options) int {
	if o.listen != "" {
		ln, err := net.Listen("tcp", o.listen)
		if err != nil {
			fmt.Fprintf(w, "stress: listen: %v\n", err)
			return 1
		}
		defer ln.Close()
		fmt.Fprintf(w, "stress: live metrics on http://%s/metrics\n", ln.Addr())
		go obs.Serve(ln)
	}
	c := &campaign{rng: xrand.New(o.seed), maxN: o.maxN, byLabel: map[string]int{}}
	deadline := time.Now().Add(o.duration)
	failures := 0
	for time.Now().Before(deadline) {
		label, err := c.one()
		c.runs++
		c.byLabel[label]++
		if err != nil {
			failures++
			fmt.Fprintf(w, "FAIL %s: %v\n", label, err)
		} else if o.verbose {
			fmt.Fprintf(w, "ok   %s\n", label)
		}
	}
	fmt.Fprintf(w, "stress: %d runs, %d failures\n", c.runs, failures)
	for label, n := range c.byLabel {
		fmt.Fprintf(w, "  %6d  %s\n", n, label)
	}
	return failures
}

// one executes a single random configuration and verifies it. Roughly a
// quarter of the runs go to the native runtime, the rest to the
// simulator with its hostile schedules.
func (c *campaign) one() (string, error) {
	if c.rng.Intn(4) == 0 {
		return c.oneNative()
	}
	return c.oneSim()
}

func (c *campaign) oneSim() (string, error) {
	n := 1 + c.rng.Intn(c.maxN)
	p := 1 + c.rng.Intn(n)
	input := harness.InputKind(c.rng.Intn(4))
	seed := c.rng.Uint64()
	keys := harness.MakeKeys(input, n, seed)

	variants := []string{"det", "rand", "lowcont"}
	variant := variants[c.rng.Intn(len(variants))]
	if variant == "lowcont" && (p < 4 || n < p) {
		variant = "rand"
	}

	sched, schedName := c.randomSchedule(p, seed)
	label := fmt.Sprintf("sim variant=%s n=%d p=%d input=%s sched=%s seed=%d",
		variant, n, p, input, schedName, seed)

	var a model.Arena
	var prog model.Program
	var seedFn func([]model.Word)
	var places func([]model.Word) []int
	switch variant {
	case "det":
		s := core.NewSorter(&a, n, core.AllocWAT)
		prog, seedFn, places = s.Program(), s.Seed, s.Places
	case "rand":
		s := core.NewSorter(&a, n, core.AllocRandomized)
		prog, seedFn, places = s.Program(), s.Seed, s.Places
	default:
		s := lowcont.New(&a, n, p)
		prog, seedFn, places = s.Program(), s.Seed, s.Places
	}
	m := pram.New(pram.Config{
		P: p, Mem: a.Size(), Seed: seed, Sched: sched,
		Less: harness.LessFor(keys),
	})
	seedFn(m.Memory())
	if _, err := m.Run(prog); err != nil {
		return label, err
	}
	return label, verifyRanks(keys, places(m.Memory()))
}

// oneNative runs one configuration on real goroutines with the
// observability plane installed and published, so a -listen endpoint
// always reports the most recent native run.
func (c *campaign) oneNative() (string, error) {
	n := 8 + c.rng.Intn(c.maxN-7)
	p := 1 + c.rng.Intn(min(16, n))
	input := harness.InputKind(c.rng.Intn(4))
	seed := c.rng.Uint64()
	keys := harness.MakeKeys(input, n, seed)

	variants := []string{"det", "rand", "lowcont"}
	variant := variants[c.rng.Intn(len(variants))]
	if variant == "lowcont" && (p < 4 || n < p) {
		variant = "rand"
	}
	layout := chaos.Layouts()[c.rng.Intn(len(chaos.Layouts()))]

	label := fmt.Sprintf("native variant=%s n=%d p=%d input=%s layout=%s seed=%d",
		variant, n, p, input, layout, seed)

	var alloc model.Allocator
	var prog model.Program
	var seedFn func([]model.Word)
	var places func([]model.Word) []int
	var live func(mem []model.Word) (sized, placed int)
	switch variant {
	case "det", "rand":
		a, tun := chaos.ArenaFor(n, p, layout)
		allocKind := core.AllocRandomized
		if variant == "det" {
			allocKind = core.AllocWAT
		}
		s := core.NewSorterTuned(a, n, allocKind, tun)
		alloc, prog, seedFn, places, live = a, s.Program(), s.Seed, s.Places, s.LiveProgress
	default:
		a := native.NewArena(native.Padded)
		s := lowcont.New(a, n, p)
		alloc, prog, seedFn, places, live = a, s.Program(), s.Seed, s.Places, s.LiveProgress
	}

	ob := obs.New(obs.Config{RingCap: 1024, SnapshotEvery: 256})
	rt := native.New(native.Config{
		P: p, Mem: alloc.Size(), Seed: seed,
		Less: harness.LessFor(keys), Observer: ob,
	})
	ob.SetProgress(func() (int, int) { return live(rt.Memory()) })
	obs.Publish(ob)
	seedFn(rt.Memory())
	if _, err := rt.Run(prog); err != nil {
		return label, err
	}
	return label, verifyRanks(keys, places(rt.Memory()))
}

// verifyRanks checks the claimed 1-based ranks against the true ones.
func verifyRanks(keys []int, got []int) error {
	want := harness.WantRanks(keys)
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("element %d placed %d, want %d", i+1, got[i], want[i])
		}
	}
	return nil
}

// randomSchedule picks one of the hostile schedules (or none).
func (c *campaign) randomSchedule(p int, seed uint64) (pram.Scheduler, string) {
	switch c.rng.Intn(5) {
	case 0:
		return nil, "synchronous"
	case 1:
		return pram.RandomSubset(0.1 + 0.8*c.rng.Float64()), "randomsubset"
	case 2:
		return pram.RoundRobin(1 + c.rng.Intn(3)), "roundrobin"
	case 3:
		crashes := pram.RandomCrashes(p, 0.3+0.5*c.rng.Float64(), 500, seed)
		kept := crashes[:0]
		for _, cr := range crashes {
			if cr.PID != 0 {
				kept = append(kept, cr)
			}
		}
		return pram.WithCrashes(pram.Synchronous(), kept), "crashes"
	default:
		return pram.NewContentionAdversary(), "adversary"
	}
}
