package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestContentionTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-min", "64", "-max", "128", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"P=N", "64", "128"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestContentionCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-min", "64", "-max", "64", "-csv"}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || lines[0] != "p,deterministic,lowcontention,sqrtp" {
		t.Errorf("csv output:\n%s", buf.String())
	}
}

func TestContentionRejectsBadRange(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-min", "2", "-max", "1"}); err == nil {
		t.Fatal("bad range accepted")
	}
}
