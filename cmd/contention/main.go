// Command contention sweeps the processor count and reports the
// maximum per-variable memory contention of the deterministic
// (Section 2) and randomized (Section 3) sorts — the paper's headline
// comparison, as a standalone tool with optional CSV output.
//
// Usage:
//
//	contention [-min 64] [-max 4096] [-seed 1] [-csv]
//
// P doubles from -min to -max with N = P (the contention-critical
// regime; with N >> P initial contention matters less, §3).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"wfsort"
	"wfsort/internal/xrand"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "contention:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("contention", flag.ContinueOnError)
	minP := fs.Int("min", 64, "smallest processor count")
	maxP := fs.Int("max", 4096, "largest processor count")
	seed := fs.Uint64("seed", 1, "seed")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *minP < 4 || *maxP < *minP {
		return fmt.Errorf("need 4 <= min <= max, got %d..%d", *minP, *maxP)
	}

	if *csv {
		fmt.Fprintln(w, "p,deterministic,lowcontention,sqrtp")
	} else {
		fmt.Fprintf(w, "%8s  %14s  %14s  %8s\n", "P=N", "deterministic", "lowcontention", "sqrt(P)")
	}
	for p := *minP; p <= *maxP; p *= 2 {
		rng := xrand.New(*seed + uint64(p))
		keys := make([]int, p)
		for i := range keys {
			keys[i] = rng.Intn(4 * p)
		}
		det, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(p), wfsort.WithVariant(wfsort.Deterministic), wfsort.WithSeed(*seed))
		if err != nil {
			return err
		}
		lc, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(p), wfsort.WithVariant(wfsort.LowContention), wfsort.WithSeed(*seed))
		if err != nil {
			return err
		}
		sq := math.Sqrt(float64(p))
		if *csv {
			fmt.Fprintf(w, "%d,%d,%d,%.1f\n", p, det.Metrics.MaxContention, lc.Metrics.MaxContention, sq)
		} else {
			fmt.Fprintf(w, "%8d  %14d  %14d  %8.1f\n", p, det.Metrics.MaxContention, lc.Metrics.MaxContention, sq)
		}
	}
	return nil
}
