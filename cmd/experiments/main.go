// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per claim of the paper (Lemmas 2.1–2.8, 3.1–3.3 and the
// §3 contention headline).
//
// Usage:
//
//	experiments [-quick] [-seed N] [-markdown] [-id E6[,E7,...]]
//
// Without -id every experiment runs in publication order. -quick trims
// the sweeps (the CI configuration); full runs are the published
// numbers. -markdown emits GitHub tables for pasting into
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wfsort/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "trimmed sweeps (CI sizes)")
	seed := flag.Uint64("seed", 1, "seed for all randomized choices")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	ids := flag.String("id", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	if err := run(*quick, *seed, *markdown, *ids); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(quick bool, seed uint64, markdown bool, ids string) error {
	opts := harness.Options{Quick: quick, Seed: seed}
	var selected []harness.Experiment
	if ids == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(ids, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if markdown {
			table.Markdown(os.Stdout)
		} else {
			table.Render(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
