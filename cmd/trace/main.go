// Command trace runs one simulated sort and renders its
// contention-over-time profile as an ASCII chart (or CSV) — the
// clearest visualization of the paper's §3 headline: the deterministic
// variant opens with a spike of height P while the randomized variant
// stays flat around sqrt(P).
//
// Usage:
//
//	trace [-n 1024] [-p 0] [-variant det|rand|lowcont] [-seed 1]
//	      [-metric contention|active] [-width 100] [-height 12] [-csv]
//
// -p 0 means P = N (the contention-critical regime).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wfsort/internal/core"
	"wfsort/internal/harness"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	n := fs.Int("n", 1024, "input size")
	p := fs.Int("p", 0, "processors (0 = N)")
	variant := fs.String("variant", "lowcont", "det, rand or lowcont")
	seed := fs.Uint64("seed", 1, "seed")
	metric := fs.String("metric", "contention", "contention or active")
	width := fs.Int("width", 100, "chart width")
	height := fs.Int("height", 12, "chart height")
	csv := fs.Bool("csv", false, "emit CSV instead of a chart")
	regions := fs.Bool("regions", false, "append a per-region contention profile")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *p <= 0 {
		*p = *n
	}
	keys := harness.MakeKeys(harness.InputRandom, *n, *seed)

	var a model.Arena
	var prog model.Program
	var seedFn func([]model.Word)
	switch *variant {
	case "det":
		s := core.NewSorter(&a, *n, core.AllocWAT)
		prog, seedFn = s.Program(), s.Seed
	case "rand":
		s := core.NewSorter(&a, *n, core.AllocRandomized)
		prog, seedFn = s.Program(), s.Seed
	case "lowcont":
		s := lowcont.New(&a, *n, *p)
		prog, seedFn = s.Program(), s.Seed
	default:
		return fmt.Errorf("unknown variant %q", *variant)
	}

	rec := trace.NewRecorder()
	profile := trace.NewRegionProfile(a.Regions())
	m := pram.New(pram.Config{
		P: *p, Mem: a.Size(), Seed: *seed,
		Less:     harness.LessFor(keys),
		Observer: trace.Multi(rec.Observer(), profile.Observer()),
	})
	seedFn(m.Memory())
	met, err := m.Run(prog)
	if err != nil {
		return err
	}
	if *csv {
		return rec.WriteCSV(w)
	}
	fmt.Fprintf(w, "%s sort, N=%d P=%d: steps=%d maxcontention=%d\n\n",
		*variant, *n, *p, met.Steps, met.MaxContention)
	if err := rec.Chart(w, *metric, *width, *height); err != nil {
		return err
	}
	if *regions {
		fmt.Fprintln(w)
		return profile.WriteTable(w)
	}
	return nil
}
