// Command trace visualizes one sort. On the simulator (the default
// runtime) it renders the contention-over-time profile as an ASCII
// chart or CSV — the clearest view of the paper's §3 headline: the
// deterministic variant opens with a spike of height P while the
// randomized variant stays flat around sqrt(P). With -runtime native
// it runs real goroutines under the internal/obs observability plane
// and emits a Chrome/Perfetto trace (one track per processor
// incarnation, phase spans, CAS-failure and fault instants) that loads
// directly in ui.perfetto.dev; -perfetto exports the simulator series
// in the same format, so both runtimes render in the same viewer.
//
// Usage:
//
//	trace [-n 1024] [-p 0] [-variant det|rand|lowcont] [-seed 1]
//	      [-runtime sim|native] [-layout sharded|padded|flat]
//	      [-metric contention|active] [-width 100] [-height 12]
//	      [-csv] [-perfetto] [-out FILE]
//
// -p 0 means P = N on the simulator (the contention-critical regime)
// and P = GOMAXPROCS on the native runtime.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"wfsort/internal/chaos"
	"wfsort/internal/core"
	"wfsort/internal/harness"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/obs"
	"wfsort/internal/pram"
	"wfsort/internal/trace"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	n := fs.Int("n", 1024, "input size")
	p := fs.Int("p", 0, "processors (0 = N on sim, GOMAXPROCS on native)")
	variant := fs.String("variant", "lowcont", "det, rand or lowcont")
	seed := fs.Uint64("seed", 1, "seed")
	rt := fs.String("runtime", "sim", "sim or native")
	layout := fs.String("layout", "sharded", "native arena layout: sharded, padded or flat")
	metric := fs.String("metric", "contention", "chart metric: contention or active")
	width := fs.Int("width", 100, "chart width")
	height := fs.Int("height", 12, "chart height")
	csv := fs.Bool("csv", false, "emit CSV instead of a chart (sim only)")
	perfetto := fs.Bool("perfetto", false, "emit Perfetto JSON instead of a chart (sim only)")
	regions := fs.Bool("regions", false, "append a per-region contention profile (sim only)")
	out := fs.String("out", "", "write Perfetto JSON to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *rt {
	case "sim":
		return runSim(w, *n, *p, *variant, *seed, *metric, *width, *height, *csv, *perfetto, *regions, *out)
	case "native":
		return runNative(w, *n, *p, *variant, *layout, *seed, *out)
	default:
		return fmt.Errorf("unknown runtime %q (valid: sim, native)", *rt)
	}
}

func runSim(w io.Writer, n, p int, variant string, seed uint64, metric string, width, height int, csv, perfetto, regions bool, out string) error {
	if p <= 0 {
		p = n
	}
	keys := harness.MakeKeys(harness.InputRandom, n, seed)

	var a model.Arena
	var prog model.Program
	var seedFn func([]model.Word)
	switch variant {
	case "det":
		s := core.NewSorter(&a, n, core.AllocWAT)
		prog, seedFn = s.Program(), s.Seed
	case "rand":
		s := core.NewSorter(&a, n, core.AllocRandomized)
		prog, seedFn = s.Program(), s.Seed
	case "lowcont":
		s := lowcont.New(&a, n, p)
		prog, seedFn = s.Program(), s.Seed
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}

	rec := trace.NewRecorder()
	profile := trace.NewRegionProfile(a.Regions())
	m := pram.New(pram.Config{
		P: p, Mem: a.Size(), Seed: seed,
		Less:     harness.LessFor(keys),
		Observer: trace.Multi(rec.Observer(), profile.Observer()),
	})
	seedFn(m.Memory())
	met, err := m.Run(prog)
	if err != nil {
		return err
	}
	if csv {
		return rec.WriteCSV(w)
	}
	if perfetto {
		return writeTrace(w, out, obs.NewTrace().AddSimSamples(rec.Samples()), func() {
			fmt.Fprintf(w, "%s sort (sim), N=%d P=%d: steps=%d maxcontention=%d\n",
				variant, n, p, met.Steps, met.MaxContention)
		})
	}
	fmt.Fprintf(w, "%s sort, N=%d P=%d: steps=%d maxcontention=%d\n\n",
		variant, n, p, met.Steps, met.MaxContention)
	if err := rec.Chart(w, metric, width, height); err != nil {
		return err
	}
	if regions {
		fmt.Fprintln(w)
		return profile.WriteTable(w)
	}
	return nil
}

// runNative executes the sort on real goroutines under the
// observability plane and exports the Perfetto trace.
func runNative(w io.Writer, n, p int, variant, layoutName string, seed uint64, out string) error {
	if p <= 0 {
		p = min(runtime.GOMAXPROCS(0), n)
	}
	var layout chaos.Layout
	switch layoutName {
	case "sharded":
		layout = chaos.LayoutSharded
	case "padded":
		layout = chaos.LayoutPadded
	case "flat":
		layout = chaos.LayoutFlat
	default:
		return fmt.Errorf("unknown layout %q (valid: sharded, padded, flat)", layoutName)
	}
	keys := harness.MakeKeys(harness.InputRandom, n, seed)

	var alloc model.Allocator
	var prog model.Program
	var seedFn func([]model.Word)
	var places func([]model.Word) []int
	switch variant {
	case "det", "rand":
		a, tun := chaos.ArenaFor(n, p, layout)
		allocKind := core.AllocRandomized
		if variant == "det" {
			allocKind = core.AllocWAT
		}
		s := core.NewSorterTuned(a, n, allocKind, tun)
		alloc, prog, seedFn, places = a, s.Program(), s.Seed, s.Places
	case "lowcont":
		if p < 4 || n < p {
			return fmt.Errorf("lowcont needs p >= 4 and n >= p, got n=%d p=%d", n, p)
		}
		a := native.NewArena(native.Padded)
		s := lowcont.New(a, n, p)
		alloc, prog, seedFn, places = a, s.Program(), s.Seed, s.Places
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}

	ob := obs.New(obs.Config{})
	rt := native.New(native.Config{
		P: p, Mem: alloc.Size(), Seed: seed,
		Less: harness.LessFor(keys), CountOps: true, Observer: ob,
	})
	seedFn(rt.Memory())
	met, err := rt.Run(prog)
	if err != nil {
		return err
	}
	if !ranksSorted(keys, places(rt.Memory())) {
		return fmt.Errorf("native run output is not sorted")
	}
	return writeTrace(w, out, obs.NewTrace().AddObserver(ob), func() {
		fmt.Fprintf(w, "%s sort (native %s), N=%d P=%d: elapsed=%v\n%s\n",
			variant, layoutName, n, p, rt.Elapsed, met)
	})
}

// writeTrace emits the Perfetto JSON to out (printing the summary to w)
// or, with no -out, emits only the JSON on w so it can be piped.
func writeTrace(w io.Writer, out string, t *obs.Trace, summary func()) error {
	if out == "" {
		return t.Write(w)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return err
	}
	summary()
	fmt.Fprintf(w, "perfetto trace written to %s — open it at https://ui.perfetto.dev\n", out)
	return nil
}

// ranksSorted verifies the places form a permutation that sorts keys.
func ranksSorted(keys []int, places []int) bool {
	out := make([]int, len(keys))
	seen := make([]bool, len(keys))
	for i, r := range places {
		if r < 1 || r > len(keys) || seen[r-1] {
			return false
		}
		seen[r-1] = true
		out[r-1] = keys[i]
	}
	return sort.IntsAreSorted(out)
}
