package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceChart(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-n", "64", "-variant", "det", "-width", "40", "-height", "5"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"det sort", "steps=", "1:build", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRegions(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-n", "64", "-variant", "lowcont", "-width", "20", "-height", "3", "-regions"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "winner") {
		t.Errorf("region table missing:\n%s", buf.String())
	}
}

func TestTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-n", "32", "-variant", "rand", "-csv"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "step,active,contention,phase") {
		t.Errorf("csv header wrong:\n%.80s", buf.String())
	}
}

func TestTraceUnknownVariant(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-variant", "zzz"}); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

// TestTraceUnknownMetric pins the fixed -metric behavior: an
// unrecognized metric must be a hard error naming the valid choices,
// not a silent contention chart.
func TestTraceUnknownMetric(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-n", "32", "-metric", "steps"})
	if err == nil {
		t.Fatal("unknown -metric accepted")
	}
	for _, want := range []string{"steps", "contention", "active"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
}

func TestTraceUnknownRuntimeAndLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-runtime", "jvm"}); err == nil {
		t.Fatal("unknown -runtime accepted")
	}
	if err := run(&buf, []string{"-runtime", "native", "-layout", "zzz"}); err == nil {
		t.Fatal("unknown -layout accepted")
	}
}

func TestTraceNativePerfetto(t *testing.T) {
	path := filepath.Join(t.TempDir(), "native.json")
	var buf bytes.Buffer
	err := run(&buf, []string{"-runtime", "native", "-n", "256", "-p", "4", "-variant", "rand", "-out", path})
	if err != nil {
		t.Fatalf("native trace: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "perfetto trace written") {
		t.Errorf("summary missing:\n%s", buf.String())
	}
	assertTraceFile(t, path)
}

func TestTraceSimPerfetto(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sim.json")
	var buf bytes.Buffer
	err := run(&buf, []string{"-n", "64", "-variant", "det", "-perfetto", "-out", path})
	if err != nil {
		t.Fatalf("sim perfetto: %v", err)
	}
	assertTraceFile(t, path)
}

// assertTraceFile checks the file parses as a Chrome trace-event JSON
// with at least one event.
func assertTraceFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}
