package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceChart(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-n", "64", "-variant", "det", "-width", "40", "-height", "5"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"det sort", "steps=", "1:build", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRegions(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-n", "64", "-variant", "lowcont", "-width", "20", "-height", "3", "-regions"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "winner") {
		t.Errorf("region table missing:\n%s", buf.String())
	}
}

func TestTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-n", "32", "-variant", "rand", "-csv"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "step,active,contention,phase") {
		t.Errorf("csv header wrong:\n%.80s", buf.String())
	}
}

func TestTraceUnknownVariant(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-variant", "zzz"}); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
