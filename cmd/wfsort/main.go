// Command wfsort sorts integers with the wait-free parallel sorting
// algorithm — on real goroutines by default, or on the deterministic
// CRCW PRAM simulator with -sim, in which case it reports exact step
// counts and memory contention.
//
// Usage:
//
//	wfsort [-workers P] [-variant det|rand|lowcont] [-sim] [-stats]
//	       [-gen N] [-seed S] [-quiet]
//
// Input is one integer per line on stdin, unless -gen N asks for a
// random input of size N. Output is the sorted sequence on stdout
// (suppressed by -quiet), with statistics on stderr when -stats or
// -sim is given.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"wfsort"
	"wfsort/internal/xrand"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wfsort:", err)
		os.Exit(1)
	}
}

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) error {
	fs := flag.NewFlagSet("wfsort", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workers := fs.Int("workers", 0, "parallel workers (default GOMAXPROCS)")
	variant := fs.String("variant", "rand", "algorithm: det, rand, or lowcont")
	sim := fs.Bool("sim", false, "run on the PRAM simulator and report exact metrics")
	stats := fs.Bool("stats", false, "report timing statistics")
	gen := fs.Int("gen", 0, "generate N random integers instead of reading stdin")
	seed := fs.Uint64("seed", 0, "seed for generation and randomized phases")
	quiet := fs.Bool("quiet", false, "suppress sorted output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	v, err := parseVariant(*variant)
	if err != nil {
		return err
	}
	data, err := input(stdin, *gen, *seed)
	if err != nil {
		return err
	}

	var opts []wfsort.Option
	if *workers > 0 {
		opts = append(opts, wfsort.WithWorkers(*workers))
	}
	opts = append(opts, wfsort.WithVariant(v), wfsort.WithSeed(*seed))

	if *sim {
		res, err := wfsort.Simulate(data, opts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "%s\ntree depth: %d\n", res.Metrics, res.TreeDepth)
		if !*quiet {
			out := make([]int, len(data))
			for i, r := range res.Ranks {
				out[r-1] = data[i]
			}
			writeInts(stdout, out)
		}
		return nil
	}

	start := time.Now()
	if err := wfsort.Sort(data, opts...); err != nil {
		return err
	}
	elapsed := time.Since(start)
	if *stats {
		fmt.Fprintf(stderr, "sorted %d integers with variant=%s in %s (sorted=%v)\n",
			len(data), v, elapsed.Round(time.Microsecond), sort.IntsAreSorted(data))
	}
	if !*quiet {
		writeInts(stdout, data)
	}
	return nil
}

func parseVariant(s string) (wfsort.Variant, error) {
	switch s {
	case "det", "deterministic":
		return wfsort.Deterministic, nil
	case "rand", "randomized":
		return wfsort.Randomized, nil
	case "lowcont", "lowcontention":
		return wfsort.LowContention, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (want det, rand or lowcont)", s)
	}
}

func input(stdin io.Reader, gen int, seed uint64) ([]int, error) {
	if gen > 0 {
		rng := xrand.New(seed)
		data := make([]int, gen)
		for i := range data {
			data[i] = rng.Intn(4 * gen)
		}
		return data, nil
	}
	var data []int
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad input line %q: %w", line, err)
		}
		data = append(data, v)
	}
	return data, sc.Err()
}

func writeInts(w io.Writer, data []int) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for _, v := range data {
		bw.WriteString(strconv.Itoa(v))
		bw.WriteByte('\n')
	}
}
