package main

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func runCLI(t *testing.T, stdin string, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err = run(strings.NewReader(stdin), &out, &errBuf, args)
	return out.String(), errBuf.String(), err
}

func parseInts(t *testing.T, s string) []int {
	t.Helper()
	var out []int
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			t.Fatalf("bad output line %q", line)
		}
		out = append(out, v)
	}
	return out
}

func TestCLISortsStdin(t *testing.T) {
	out, _, err := runCLI(t, "5\n3\n9\n1\n")
	if err != nil {
		t.Fatal(err)
	}
	got := parseInts(t, out)
	want := []int{1, 3, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %v, want %v", got, want)
		}
	}
}

func TestCLIGenerates(t *testing.T) {
	out, stderr, err := runCLI(t, "", "-gen", "50", "-stats", "-workers", "3")
	if err != nil {
		t.Fatal(err)
	}
	got := parseInts(t, out)
	if len(got) != 50 || !sort.IntsAreSorted(got) {
		t.Fatalf("output not a sorted 50-element list")
	}
	if !strings.Contains(stderr, "sorted 50 integers") {
		t.Errorf("stats missing: %q", stderr)
	}
}

func TestCLIVariants(t *testing.T) {
	for _, v := range []string{"det", "rand", "lowcont", "deterministic", "randomized", "lowcontention"} {
		out, _, err := runCLI(t, "", "-gen", "40", "-variant", v, "-workers", "8")
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !sort.IntsAreSorted(parseInts(t, out)) {
			t.Errorf("%s: not sorted", v)
		}
	}
}

func TestCLIUnknownVariant(t *testing.T) {
	if _, _, err := runCLI(t, "", "-gen", "4", "-variant", "bogus"); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

func TestCLISimulate(t *testing.T) {
	out, stderr, err := runCLI(t, "", "-gen", "32", "-sim", "-workers", "32", "-seed", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "steps=") || !strings.Contains(stderr, "tree depth:") {
		t.Errorf("simulation stats missing: %q", stderr)
	}
	if !sort.IntsAreSorted(parseInts(t, out)) {
		t.Error("simulated output not sorted")
	}
}

func TestCLIQuiet(t *testing.T) {
	out, _, err := runCLI(t, "", "-gen", "10", "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if out != "" {
		t.Errorf("quiet mode printed %q", out)
	}
}

func TestCLIBadInput(t *testing.T) {
	if _, _, err := runCLI(t, "12\nnope\n"); err == nil {
		t.Fatal("non-integer input accepted")
	}
}

func TestCLIEmptyInput(t *testing.T) {
	out, _, err := runCLI(t, "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("empty input produced %q", out)
	}
}

func TestCLISkipsBlankLines(t *testing.T) {
	out, _, err := runCLI(t, "3\n\n1\n\n2\n")
	if err != nil {
		t.Fatal(err)
	}
	got := parseInts(t, out)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("output %v", got)
	}
}
