package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSpec = `{
  "seed": 7, "horizon_ms": 300,
  "classes": [
    {"name": "small", "arrival": {"dist": "det", "rate": 200},
     "size": {"dist": "fixed", "n": 32}, "keyspace": 16}
  ]
}
`

func writeSpec(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(p, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no spec", []string{"-inprocess"}, "-spec or -replay"},
		{"both spec and replay", []string{"-spec", "a", "-replay", "b"}, "-spec or -replay"},
		{"no target", []string{"-spec", "a"}, "-url or -inprocess"},
		{"both targets", []string{"-spec", "a", "-url", "http://x", "-inprocess"}, "-url or -inprocess"},
		{"bad rates", []string{"-spec", writeSpec(t), "-inprocess", "-capacity", "-rates", "10,abc"}, "bad -rates"},
		{"descending rates", []string{"-spec", writeSpec(t), "-inprocess", "-capacity", "-rates", "20,10"}, "ascending"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(&buf, tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestRunRecordReplayRoundTrip(t *testing.T) {
	spec := writeSpec(t)
	trace := filepath.Join(t.TempDir(), "trace.json")

	var buf bytes.Buffer
	if err := run(&buf, []string{"-spec", spec, "-record", trace}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace recorded") {
		t.Fatalf("record output: %q", buf.String())
	}

	// Replaying the recorded trace in-process completes every request.
	buf.Reset()
	if err := run(&buf, []string{"-replay", trace, "-inprocess", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"small", "total", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunInProcessJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{"-spec", writeSpec(t), "-inprocess", "-workers", "2", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"totals"`, `"p99_ms"`, `"unsorted": 0`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON report missing %s:\n%s", want, out)
		}
	}
}

func TestRunTotalRateRescalesSpec(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")

	// -total-rate rescales the spec before the trace is built: at 4x
	// the spec's own 200 req/s over the same 300 ms horizon, the
	// recorded trace carries ~4x the requests.
	var buf bytes.Buffer
	if err := run(&buf, []string{"-spec", writeSpec(t), "-record", trace, "-total-rate", "800"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Spec struct {
			Classes []struct {
				Arrival struct {
					Rate float64 `json:"rate"`
				} `json:"arrival"`
			} `json:"classes"`
		} `json:"spec"`
	}
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spec.Classes) != 1 || tr.Spec.Classes[0].Arrival.Rate != 800 {
		t.Fatalf("recorded trace spec not rescaled: %+v", tr.Spec)
	}

	// A bad total is the rescaler's typed error, surfaced as a flag
	// failure rather than a generated schedule.
	buf.Reset()
	if err := run(&buf, []string{"-spec", writeSpec(t), "-record", trace, "-total-rate", "-10"}); err == nil {
		t.Fatal("negative -total-rate accepted")
	}
}

func TestParseRatesDefaultLadder(t *testing.T) {
	rates, err := parseRates("", 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{100, 200, 400, 800, 1600, 3200, 6400}
	if len(rates) != len(want) {
		t.Fatalf("ladder %v, want %v", rates, want)
	}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("ladder %v, want %v", rates, want)
		}
	}
}

func TestParseRatesExplicit(t *testing.T) {
	rates, err := parseRates(" 10, 25.5 ,100", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 3 || rates[1] != 25.5 {
		t.Fatalf("rates = %v", rates)
	}
}
