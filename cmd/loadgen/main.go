// Command loadgen drives the sort service with open-loop traffic from
// a declarative workload spec and reports per-class latency, shed and
// fairness — or, in -capacity mode, sweeps offered load to find the
// req/s knee where p99 crosses the SLO.
//
//	loadgen -spec workload.json -url http://localhost:8080
//	loadgen -spec workload.json -inprocess -workers 4
//	loadgen -spec workload.json -record trace.json        # plan only
//	loadgen -replay trace.json -inprocess                 # byte-identical rerun
//	loadgen -spec workload.json -inprocess -capacity -slo 50ms
//
// A spec is JSON (see internal/loadgen.Spec):
//
//	{
//	  "seed": 7, "horizon_ms": 2000,
//	  "classes": [
//	    {"name": "small", "arrival": {"dist": "poisson", "rate": 200},
//	     "size": {"dist": "fixed", "n": 64}, "keyspace": 100},
//	    {"name": "bulk", "arrival": {"dist": "gamma", "rate": 20, "shape": 0.5},
//	     "size": {"dist": "uniform", "min": 1000, "max": 8000}}
//	  ],
//	  "bursts": [{"start_ms": 500, "dur_ms": 200, "mult": 3}]
//	}
//
// Runs are fully seeded: the same spec produces the same request
// schedule, sizes and key contents on every host, and -record/-replay
// pin a schedule to a file so an anomaly reproduces byte-for-byte.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"wfsort"
	"wfsort/internal/loadgen"
	"wfsort/internal/server"
)

// newPooledClient builds an HTTP client sized for open-loop fan-out:
// the default transport's per-host idle cap (2) would force a fresh
// TCP handshake onto most concurrent requests and bill it as latency.
func newPooledClient(timeout time.Duration) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: tr, Timeout: timeout}
}

func jsonIndent(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		specPath  = fs.String("spec", "", "workload spec JSON file")
		replay    = fs.String("replay", "", "replay a recorded trace instead of generating from -spec")
		record    = fs.String("record", "", "write the generated trace here and exit without running")
		url       = fs.String("url", "", "target service base URL (e.g. http://localhost:8080)")
		inproc    = fs.Bool("inprocess", false, "boot internal/server in-process as the target")
		workers   = fs.Int("workers", 0, "in-process server sort workers (0 = GOMAXPROCS)")
		inflight  = fs.Int("max-inflight", 64, "in-process server admission bound")
		churn     = fs.Int("churn", 0, "in-process server: kill+revive every non-zero worker this many times per sort")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of a table")
		capacity  = fs.Bool("capacity", false, "sweep offered load and report the SLO knee")
		slo       = fs.Duration("slo", 50*time.Millisecond, "p99 SLO for -capacity")
		shedFrac  = fs.Float64("max-shed", 0.05, "tolerated shed fraction per -capacity point")
		rateSpec  = fs.String("rates", "", "comma-separated offered req/s points for -capacity (default: spec rate × {1,2,4,...,64})")
		totalRate = fs.Float64("total-rate", 0, "rescale class rates to this aggregate req/s, split by each class's weight")
		timeoutMs = fs.Int("client-timeout-ms", 30_000, "HTTP client timeout against -url targets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*specPath == "") == (*replay == "") {
		return fmt.Errorf("exactly one of -spec or -replay is required")
	}
	if *record == "" && (*url == "") == !*inproc {
		return fmt.Errorf("exactly one of -url or -inprocess is required")
	}

	var trace *loadgen.Trace
	if *replay != "" {
		t, err := loadgen.LoadTrace(*replay)
		if err != nil {
			return err
		}
		trace = t
	} else {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec, err := loadgen.ParseSpec(b)
		if err != nil {
			return err
		}
		if *totalRate != 0 {
			if spec, err = spec.ScaledToTotal(*totalRate); err != nil {
				return err
			}
		}
		trace, err = loadgen.BuildTrace(spec)
		if err != nil {
			return err
		}
	}

	if *record != "" {
		if err := loadgen.SaveTrace(*record, trace); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace recorded to %s (%d requests over %v)\n",
			*record, len(trace.Reqs), trace.Spec.Horizon())
		return nil
	}

	newTarget := func() (loadgen.Target, func(), error) {
		if *url != "" {
			client := newPooledClient(time.Duration(*timeoutMs) * time.Millisecond)
			return &loadgen.HTTPTarget{URL: *url, Client: client}, func() {}, nil
		}
		cfg := server.Config{Workers: *workers, MaxInFlight: *inflight}
		if *churn > 0 {
			cfg.Options = []wfsort.Option{wfsort.WithChurn(*churn), wfsort.WithSeed(trace.Spec.Seed + 1)}
		}
		srv, err := server.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		stop := func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}
		return &loadgen.HandlerTarget{Handler: srv.Handler()}, stop, nil
	}

	if *capacity {
		rates, err := parseRates(*rateSpec, trace.Spec.TotalRate())
		if err != nil {
			return err
		}
		rep, err := loadgen.SweepCapacity(context.Background(), loadgen.CapacityConfig{
			Base:        &trace.Spec,
			Rates:       rates,
			SLOMs:       float64(*slo) / float64(time.Millisecond),
			MaxShedFrac: *shedFrac,
			NewTarget:   newTarget,
			Log:         w,
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			b, _ := jsonIndent(rep)
			w.Write(b)
			return nil
		}
		fmt.Fprintf(w, "knee: %.1f req/s offered (%.1f ok/s) under p99 <= %v\n",
			rep.KneeRPS, rep.KneeOKRPS, *slo)
		printKneeStages(w, rep.KneeStages)
		return nil
	}

	target, stop, err := newTarget()
	if err != nil {
		return err
	}
	res := loadgen.Run(context.Background(), trace, target)
	stop()
	rep := loadgen.BuildReport(res)
	if *jsonOut {
		w.Write(rep.JSON())
		return nil
	}
	fmt.Fprint(w, rep.Table())
	return nil
}

// printKneeStages renders the server-attributed stage breakdown
// measured at the knee, in lifecycle order, so the capacity verdict
// says not just how much load fits but where a request's time goes
// when the server is at it.
func printKneeStages(w io.Writer, stages map[string]loadgen.StageSummary) {
	if len(stages) == 0 {
		return
	}
	order := []string{"admit", "sem", "decode", "batch", "queue", "sort", "merge", "encode"}
	fmt.Fprintf(w, "stage breakdown at the knee (server-attributed):\n")
	fmt.Fprintf(w, "  %-8s %10s %10s %10s %8s\n", "stage", "p50(ms)", "p99(ms)", "mean(ms)", "count")
	for _, name := range order {
		st, ok := stages[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-8s %10.3f %10.3f %10.3f %8d\n", name, st.P50Ms, st.P99Ms, st.MeanMs, st.Count)
	}
}

// parseRates reads the -rates list, or derives a doubling ladder from
// the spec's own aggregate rate.
func parseRates(s string, base float64) ([]float64, error) {
	if s == "" {
		var rates []float64
		for m := 1.0; m <= 64; m *= 2 {
			rates = append(rates, base*m)
		}
		return rates, nil
	}
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		var r float64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &r); err != nil || r <= 0 {
			return nil, fmt.Errorf("bad -rates entry %q", f)
		}
		rates = append(rates, r)
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			return nil, fmt.Errorf("-rates must be strictly ascending")
		}
	}
	return rates, nil
}
