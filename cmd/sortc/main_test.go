package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"wfsort/internal/server"
)

func newTestServer(t *testing.T) *server.Server {
	t.Helper()
	srv, err := server.New(server.Config{Workers: 2, TraceOff: true})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// backendServer boots one in-process sortd serving surface on a real
// socket, so sortc's HTTP transport path is the one under test.
func backendServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ts
}

// TestSortcServesAndDrains boots two sortd backends and the
// coordinator on random ports, pushes a multi-shard sort through the
// full HTTP path, and expects a clean drain.
func TestSortcServesAndDrains(t *testing.T) {
	b1, b2 := backendServer(t), backendServer(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", b1.URL + "," + b2.URL,
			"-shard-keys", "512",
			"-probe-every", "200ms",
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("sortc exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("sortc never became ready")
	}
	if !strings.Contains(out.String(), "backends=2 healthy=2") {
		t.Fatalf("banner does not report the probed fleet: %s", out.String())
	}

	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, 2000) // 4 shards at -shard-keys 512
	for i := range keys {
		keys[i] = rng.Int63n(1 << 20)
	}
	body, _ := json.Marshal(map[string]any{"keys": keys})
	req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/sort", bytes.NewReader(body))
	req.Header.Set("X-Trace-Id", "e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Sorted []int64 `json:"sorted"`
		N      int     `json:"n"`
		Shards int     `json:"shards"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		t.Fatalf("sort: status %d, decode err %v", resp.StatusCode, decErr)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "e2e-1" {
		t.Fatalf("trace echo %q, want e2e-1", got)
	}
	if sr.Shards < 2 {
		t.Fatalf("shards = %d, want a real fan-out", sr.Shards)
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(sr.Sorted) != len(want) {
		t.Fatalf("n = %d, want %d", len(sr.Sorted), len(want))
	}
	for i := range want {
		if sr.Sorted[i] != want[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, sr.Sorted[i], want[i])
		}
	}

	if resp, err := http.Get("http://" + addr + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", err, resp)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Coordinator struct {
			SortsOK          int64 `json:"sorts_ok"`
			ShardsDispatched int64 `json:"shards_dispatched"`
		} `json:"coordinator"`
	}
	decErr = json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if decErr != nil || m.Coordinator.SortsOK != 1 || m.Coordinator.ShardsDispatched < 2 {
		t.Fatalf("metrics: err %v, coordinator %+v", decErr, m.Coordinator)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v (output: %s)", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sortc did not drain")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("no drain confirmation in output: %s", out.String())
	}
}

// TestSortcWireScatter boots the coordinator with -wire: every shard
// crosses the real sockets as a binary block and comes back as a
// KindShardReply whose header carries the backend's ledger. A clean
// metrics snapshot (one sort OK, a real fan-out, zero redispatches and
// ledger failures) certifies the binary scatter end to end — the
// coordinator's per-shard fold cross-check ran on every reply.
func TestSortcWireScatter(t *testing.T) {
	b1, b2 := backendServer(t), backendServer(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", b1.URL + "," + b2.URL,
			"-shard-keys", "512",
			"-wire",
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("sortc exited early: %v (output: %s)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("sortc never became ready")
	}

	rng := rand.New(rand.NewSource(9))
	keys := make([]int64, 2000)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 20)
	}
	body, _ := json.Marshal(map[string]any{"keys": keys})
	resp, err := http.Post("http://"+addr+"/sort", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Sorted []int64 `json:"sorted"`
		Shards int     `json:"shards"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || decErr != nil {
		t.Fatalf("sort: status %d, decode err %v", resp.StatusCode, decErr)
	}
	if sr.Shards < 2 {
		t.Fatalf("shards = %d, want a real fan-out", sr.Shards)
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if sr.Sorted[i] != want[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, sr.Sorted[i], want[i])
		}
	}

	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Coordinator struct {
			SortsOK          int64 `json:"sorts_ok"`
			ShardsDispatched int64 `json:"shards_dispatched"`
			Redispatches     int64 `json:"redispatches"`
			LedgerFailures   int64 `json:"ledger_failures"`
		} `json:"coordinator"`
	}
	decErr = json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if decErr != nil || m.Coordinator.SortsOK != 1 || m.Coordinator.ShardsDispatched < 2 ||
		m.Coordinator.Redispatches != 0 || m.Coordinator.LedgerFailures != 0 {
		t.Fatalf("wire scatter not clean: err %v, coordinator %+v", decErr, m.Coordinator)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v (output: %s)", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sortc did not drain")
	}
}

// TestSortcRejectsBadFlags locks the flag validation: no backends and
// an unknown policy both abort startup.
func TestSortcRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0"}, &out, nil); err == nil ||
		!strings.Contains(err.Error(), "backends") {
		t.Fatalf("no -backends: err = %v, want an error naming backends", err)
	}
	if err := run(context.Background(), []string{
		"-addr", "127.0.0.1:0", "-backends", "http://127.0.0.1:1", "-policy", "bogus",
	}, &out, nil); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("bogus policy: err = %v, want an error naming the policy", err)
	}
}
