// Command sortc is the cluster coordinator: one POST /sort front end
// that sample-sorts across a fleet of sortd backends — seeded
// splitters cut the input into bounded key-range shards, each shard
// runs on a backend's pooled wait-free sorter via POST /shard, and the
// sorted runs are k-way merged on the way back. Class, deadline and
// trace identity propagate across the fan-out, failed backends are
// retried and shards redispatched, and a sum/xor ledger certifies that
// no key was lost or duplicated along the way.
//
//	sortc -addr :8090 -backends http://h1:8080,http://h2:8080 -policy least-loaded
//
// Endpoints: POST /sort (same contract as sortd, so loadgen and every
// existing client work unchanged), GET /healthz, GET /metrics.
// SIGINT/SIGTERM starts a graceful drain: in-flight sorts finish, new
// ones get 503, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wfsort/internal/cluster"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sortc:", err)
		os.Exit(1)
	}
}

// run is the whole coordinator behind a testable seam: ctx
// cancellation doubles as a signal, and ready (when non-nil) receives
// the bound address once the listener is up.
func run(ctx context.Context, args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("sortc", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr        = fs.String("addr", ":8090", "listen address")
		backends    = fs.String("backends", "", "comma-separated sortd base URLs (required)")
		policy      = fs.String("policy", "round-robin", "round-robin | least-loaded | size-affinity")
		shardKeys   = fs.Int("shard-keys", 0, "max keys per shard (0 = default 65536)")
		oversample  = fs.Int("oversample", 0, "splitter sample size per shard (0 = default 32)")
		seed        = fs.Uint64("seed", 0, "splitter sample seed (0 = default 1)")
		maxAttempts = fs.Int("max-attempts", 0, "per-shard hard-failure budget (0 = 2*backends+2)")
		backoff     = fs.Duration("backoff", 0, "first backpressure retry delay (0 = default 2ms)")
		timeout     = fs.Duration("timeout", 60*time.Second, "per-request deadline")
		shardTO     = fs.Duration("shard-timeout", 10*time.Second, "per-shard-attempt deadline")
		probeEvery  = fs.Duration("probe-every", 2*time.Second, "health-probe interval (0 = passive health only)")
		maxInflight = fs.Int("max-inflight", 64, "admitted requests before 429")
		maxKeys     = fs.Int("max-keys", 1<<22, "request size limit before 413")
		drainWait   = fs.Duration("drain-timeout", 30*time.Second, "graceful drain limit on shutdown")
		wireOn      = fs.Bool("wire", false, "scatter shards over the binary wire codec instead of JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var fleet []cluster.Transport
	for _, u := range strings.Split(*backends, ",") {
		u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/"))
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			u = "http://" + u
		}
		fleet = append(fleet, &cluster.HTTPBackend{URL: u, Wire: *wireOn})
	}
	if len(fleet) == 0 {
		return fmt.Errorf("no backends: pass -backends http://host:port[,...]")
	}
	pol, err := cluster.ParsePolicy(*policy)
	if err != nil {
		return err
	}

	coord, err := cluster.New(cluster.Config{
		Backends:      fleet,
		Policy:        pol,
		ShardKeys:     *shardKeys,
		Oversample:    *oversample,
		Seed:          *seed,
		MaxRedispatch: *maxAttempts,
		Backoff:       *backoff,
		ShardTimeout:  *shardTO,
		ProbeEvery:    *probeEvery,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	handler, drain := cluster.NewHandler(coord, cluster.HandlerConfig{
		MaxInFlight: *maxInflight,
		MaxKeys:     *maxKeys,
		Timeout:     *timeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}

	// One synchronous probe sweep before the banner, so the healthy
	// count it prints reflects the fleet as found, not as assumed.
	pctx, pcancel := context.WithTimeout(ctx, 2*time.Second)
	coord.ProbeNow(pctx)
	pcancel()
	healthy := 0
	for _, b := range coord.Stats().Backends {
		if b.Healthy {
			healthy++
		}
	}
	fmt.Fprintf(out, "sortc: serving on %s (backends=%d healthy=%d policy=%s)\n",
		ln.Addr(), len(fleet), healthy, *policy)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "sortc: %v — draining\n", sig)
	case <-ctx.Done():
		fmt.Fprintln(out, "sortc: context canceled — draining")
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Stop accepting first, then wait out the in-flight fan-outs.
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := coord.Stats()
	fmt.Fprintf(out, "sortc: drained (%d sorts, %d shards dispatched, %d redispatches)\n",
		st.Sorts, st.ShardsDispatched, st.Redispatches)
	return nil
}
