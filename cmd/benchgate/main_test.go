package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(host Host, cells ...Result) *Report {
	return &Report{Host: host, Results: cells}
}

var hostA = Host{GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.24.0", GOMAXPROCS: 8, NumCPU: 8}
var hostB = Host{GOOS: "darwin", GOARCH: "arm64", GoVersion: "go1.24.0", GOMAXPROCS: 10, NumCPU: 10}

func TestCompareAbsoluteGate(t *testing.T) {
	base := report(hostA,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 1000},
		Result{Layout: "flat", P: 8, N: 1 << 18, ElemsPerSec: 500})

	// Within tolerance: no failures.
	cur := report(hostA,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 950},
		Result{Layout: "flat", P: 8, N: 1 << 18, ElemsPerSec: 480})
	if f := compare(base, cur, 0.10); len(f) != 0 {
		t.Fatalf("expected clean gate, got %v", f)
	}

	// 20% absolute drop on the sharded cell must fail.
	cur = report(hostA,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 800},
		Result{Layout: "flat", P: 8, N: 1 << 18, ElemsPerSec: 500})
	f := compare(base, cur, 0.10)
	if len(f) == 0 {
		t.Fatal("expected absolute-throughput regression to fail the gate")
	}
	if !strings.Contains(f[0], "sharded/p8") {
		t.Fatalf("failure should name the cell: %v", f)
	}
}

func TestCompareRatioGateIsHostIndependent(t *testing.T) {
	base := report(hostA,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 1000},
		Result{Layout: "flat", P: 8, N: 1 << 18, ElemsPerSec: 500}) // 2.0x

	// Different host, globally slower, but the ratio holds: pass.
	cur := report(hostB,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 400},
		Result{Layout: "flat", P: 8, N: 1 << 18, ElemsPerSec: 200}) // 2.0x
	if f := compare(base, cur, 0.10); len(f) != 0 {
		t.Fatalf("ratio gate should pass across hosts, got %v", f)
	}

	// Different host and the sharded advantage collapsed: fail.
	cur = report(hostB,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 210},
		Result{Layout: "flat", P: 8, N: 1 << 18, ElemsPerSec: 200}) // 1.05x
	f := compare(base, cur, 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "ratio sharded/flat") {
		t.Fatalf("expected exactly the ratio failure, got %v", f)
	}
}

func TestCompareObserverOverheadGate(t *testing.T) {
	base := report(hostA,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 1000})

	// 5% overhead with the observer installed: within a 10% tolerance.
	cur := report(hostB,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 1000},
		Result{Layout: "sharded", P: 8, N: 1 << 18, Observed: true, ElemsPerSec: 950})
	if f := compare(base, cur, 0.10); len(f) != 0 {
		t.Fatalf("5%% observer overhead should pass, got %v", f)
	}

	// 25% overhead must fail, on any host, with no baseline cells.
	cur = report(hostB,
		Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 1000},
		Result{Layout: "sharded", P: 8, N: 1 << 18, Observed: true, ElemsPerSec: 750})
	f := compare(base, cur, 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "observer overhead") {
		t.Fatalf("expected exactly the observer-overhead failure, got %v", f)
	}
}

func TestCompareSkipsUnknownCells(t *testing.T) {
	base := report(hostA, Result{Layout: "sharded", P: 8, N: 1 << 18, ElemsPerSec: 1000})
	cur := report(hostA, Result{Layout: "sharded", P: 4, N: 1 << 16, ElemsPerSec: 1})
	if f := compare(base, cur, 0.10); len(f) != 0 {
		t.Fatalf("cells absent from the baseline must not gate, got %v", f)
	}
}

func TestHostComparable(t *testing.T) {
	if !hostA.comparable(hostA) {
		t.Fatal("identical hosts must be comparable")
	}
	if hostA.comparable(hostB) {
		t.Fatal("different hosts must not be comparable")
	}
	upgraded := hostA
	upgraded.GoVersion = "go1.99.0"
	if !hostA.comparable(upgraded) {
		t.Fatal("a Go version bump alone must not disable the gate")
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	in := report(hostA,
		Result{Layout: "sharded", P: 8, N: 262144, ElemsPerSec: 123456.5, Runs: 3})
	if err := writeReport(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Host != in.Host || len(out.Results) != 1 || out.Results[0] != in.Results[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestMeasureSortsCorrectly(t *testing.T) {
	r, err := measure(cellSpec{layout: 0, p: 4, n: 4096}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ElemsPerSec <= 0 || r.N != 4096 || r.P != 4 {
		t.Fatalf("bad result: %+v", r)
	}
}

func TestQuickSmokeWithoutBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real sorts")
	}
	dir := t.TempDir()
	var sb strings.Builder
	err := run(&sb, []string{
		"-quick", "-runs", "1",
		"-baseline", filepath.Join(dir, "missing.json"),
		"-out", filepath.Join(dir, "out.json"),
	})
	if err != nil {
		t.Fatalf("quick smoke must not fail without a baseline: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "smoke passed") {
		t.Fatalf("expected smoke summary, got:\n%s", sb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "out.json")); err != nil {
		t.Fatalf("-out report not written: %v", err)
	}
}
