package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"wfsort/internal/loadgen"
	"wfsort/internal/server"
)

// The -capacity mode gates the serving stack's capacity curve: an
// open-loop loadgen sweep (internal/loadgen) offers a fixed two-class
// mix — small duplicate-heavy requests plus bulk distinct ones — at
// doubling rates against an in-process server, brackets the knee where
// p99 crosses the SLO (or shedding passes its bound), refines it
// geometrically, and records the result in BENCH_capacity.json.
//
// Gates:
//
//   - unconditional, any mode: no point may return an unsorted body —
//     a fast wrong answer is not capacity.
//   - unconditional, non-quick: the knee must exist (the server meets
//     the SLO at least at the sweep's starting rate).
//   - against a comparable-host baseline: the knee req/s must be
//     within tolerance. Knee measurements are noisier than throughput
//     cells (the knee sits where the latency curve is near-vertical),
//     so the capacity tolerance is max(-tolerance, 0.25).
//
// In -quick mode the sweep shrinks (deterministic interarrivals, short
// horizons, low ceiling) and perf deviations are reported, not failed
// — but correctness still gates.

// capSLOMs is the serving SLO the knee is defined against: p99 of
// successfully served requests, milliseconds.
const capSLOMs = 50.0

// CapReport is the BENCH_capacity.json schema.
type CapReport struct {
	Host        Host                    `json:"host"`
	SLOMs       float64                 `json:"slo_ms"`
	MaxShedFrac float64                 `json:"max_shed_frac"`
	Quick       bool                    `json:"quick,omitempty"`
	KneeRPS     float64                 `json:"knee_rps"`
	KneeOKRPS   float64                 `json:"knee_ok_rps"`
	Points      []loadgen.CapacityPoint `json:"points"`
}

// capacitySpec is the workload shape every sweep point scales: 4/5 of
// requests are small and duplicate-heavy (the batcher's regime), 1/5
// bulk with distinct keys (the pooled-context regime). Quick mode uses
// deterministic interarrivals so the CI smoke is schedule-stable;
// the full sweep uses poisson arrivals with a weibull bulk tail.
func capacitySpec(quick bool) *loadgen.Spec {
	s := &loadgen.Spec{
		Seed:      11,
		HorizonMs: 3000,
		Classes: []loadgen.ClassSpec{
			{
				Name:     "small",
				Arrival:  loadgen.ArrivalSpec{Dist: loadgen.DistPoisson, Rate: 80},
				Size:     loadgen.SizeSpec{Dist: loadgen.SizeFixed, N: 64},
				KeySpace: 100,
			},
			{
				Name:    "bulk",
				Arrival: loadgen.ArrivalSpec{Dist: loadgen.DistWeibull, Rate: 20, Shape: 0.7},
				Size:    loadgen.SizeSpec{Dist: loadgen.SizeUniform, Min: 1 << 10, Max: 1 << 13},
			},
		},
	}
	if quick {
		s.HorizonMs = 500
		for i := range s.Classes {
			s.Classes[i].Arrival.Dist = loadgen.DistDet
			s.Classes[i].Arrival.Shape = 0
		}
	}
	return s
}

// runCapacity is the -capacity entry point, sharing run's flag values.
func runCapacity(w io.Writer, baseline, out string, write, quick bool, tol float64) error {
	var base *CapReport
	if !write {
		b, err := readCapReport(baseline)
		if err != nil {
			if !(quick && os.IsNotExist(err)) {
				return fmt.Errorf("reading baseline: %w (run with -capacity -write to create it)", err)
			}
		} else {
			base = b
		}
	}

	rep, err := measureCapacity(w, quick)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "knee: %.1f req/s offered (%.1f ok/s) under p99 <= %.0f ms\n",
		rep.KneeRPS, rep.KneeOKRPS, rep.SLOMs)
	if out != "" {
		if err := writeCapReport(out, rep); err != nil {
			return err
		}
	}
	if write {
		if err := writeCapReport(baseline, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "capacity baseline written to %s (%d points)\n", baseline, len(rep.Points))
		return nil
	}

	// Correctness gates in every mode.
	for _, p := range rep.Points {
		if p.Unsorted > 0 {
			return fmt.Errorf("capacity point %.0f req/s returned %d unsorted bodies", p.OfferedRPS, p.Unsorted)
		}
	}

	failures := compareCapacity(base, rep, tol)
	for _, f := range failures {
		fmt.Fprintln(w, "REGRESSION:", f)
	}
	if quick {
		fmt.Fprintf(w, "capacity smoke passed: %d points, all bodies sorted (%d perf deviations reported, not gated)\n",
			len(rep.Points), len(failures))
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d capacity gate(s) failed against baseline %s", len(failures), baseline)
	}
	fmt.Fprintf(w, "capacity gate passed: knee %.1f req/s within %.0f%% of %s\n",
		rep.KneeRPS, capTolerance(tol)*100, baseline)
	return nil
}

func measureCapacity(w io.Writer, quick bool) (*CapReport, error) {
	spec := capacitySpec(quick)
	start, ceiling := spec.TotalRate(), 102_400.0
	refine := 5
	if quick {
		ceiling = start * 4
		refine = 0
	}
	kneeRep, err := loadgen.FindKnee(context.Background(), loadgen.KneeConfig{
		CapacityConfig: loadgen.CapacityConfig{
			Base:        spec,
			SLOMs:       capSLOMs,
			MaxShedFrac: 0.05,
			NewTarget:   newCapacityTarget,
			Log:         w,
		},
		Start:  start,
		Max:    ceiling,
		Refine: refine,
	})
	if err != nil {
		return nil, err
	}
	return &CapReport{
		Host:        hostFingerprint(),
		SLOMs:       kneeRep.SLOMs,
		MaxShedFrac: kneeRep.MaxShedFrac,
		Quick:       quick,
		KneeRPS:     kneeRep.KneeRPS,
		KneeOKRPS:   kneeRep.KneeOKRPS,
		Points:      kneeRep.Points,
	}, nil
}

// newCapacityTarget boots a fresh in-process server per sweep point so
// one overloaded point's queue debt cannot bleed into the next.
func newCapacityTarget() (loadgen.Target, func(), error) {
	srv, err := server.New(server.Config{MaxInFlight: 64})
	if err != nil {
		return nil, nil, err
	}
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	return &loadgen.HandlerTarget{Handler: srv.Handler()}, stop, nil
}

// capTolerance widens the flag tolerance for the knee gate: the knee
// sits where the latency curve is near-vertical, so run-to-run noise
// is structurally larger than for throughput cells.
func capTolerance(tol float64) float64 { return max(tol, 0.25) }

// compareCapacity runs the capacity gates (see the file comment).
func compareCapacity(base, cur *CapReport, tol float64) []string {
	var failures []string
	if cur.KneeRPS == 0 {
		failures = append(failures, fmt.Sprintf(
			"no capacity knee: the server missed the %.0f ms SLO even at the starting rate", cur.SLOMs))
	}
	if base == nil {
		return failures
	}
	if !base.Host.comparable(cur.Host) || base.KneeRPS <= 0 {
		return failures
	}
	if base.SLOMs != cur.SLOMs || base.Quick != cur.Quick {
		// A changed SLO or mode redefines the knee; absolute comparison
		// would gate apples against oranges.
		return failures
	}
	t := capTolerance(tol)
	if change := cur.KneeRPS / base.KneeRPS; change < 1-t {
		failures = append(failures, fmt.Sprintf(
			"capacity knee: %.1f req/s is %.1f%% below the baseline's %.1f req/s",
			cur.KneeRPS, 100*(1-change), base.KneeRPS))
	}
	return failures
}

func readCapReport(path string) (*CapReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r CapReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeCapReport(path string, r *CapReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
