package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"wfsort/internal/loadgen"
	"wfsort/internal/qos"
	"wfsort/internal/server"
)

// The -qos mode gates the QoS plane's reason to exist: under a 50/50
// two-class overload (latency-sensitive small sorts vs bulk ones), the
// priority scheduler must cut the latency class's p99 without starving
// bulk. One seeded trace is generated past the serving knee and run
// twice against otherwise identical in-process servers — once FIFO
// (no QoS config), once with the QoS plane installed — and the gate
// acts on the within-run ratios, so it needs no comparable host:
//
//   - unconditional, any mode: no request in either run may return an
//     unsorted body, and transport errors are zero — a scheduler that
//     corrupts or drops work is wrong before it is slow.
//   - non-quick: the latency class's p99 under QoS must be at most
//     qosLatP99Max of its FIFO p99 — the priority tiers must buy a
//     real latency win at the knee, not a measurement wiggle.
//   - non-quick: the bulk class's completed-OK count under QoS must be
//     at least qosBulkOKMin of its FIFO count — priority must not
//     become starvation; aging is what keeps this gate honest.
//
// There is deliberately no baseline-drift gate: past the knee the FIFO
// p99 depends on exactly when the queue saturates within the horizon,
// which is chaotic run to run (observed 60 ms to 1.8 s on one host),
// so a ratio-drift comparison would gate on noise. The checked-in
// BENCH_qos.json is the certification record of one full run; every
// gating run re-derives both sides of the ratio itself.
//
// In -quick mode the trace shrinks (deterministic interarrivals, short
// horizon) and ratio deviations are reported, not failed — but
// correctness still gates.

const (
	// qosLatP99Max bounds the latency class's p99 under QoS relative
	// to FIFO: at most 70% of the FIFO value.
	qosLatP99Max = 0.7
	// qosBulkOKMin bounds the bulk class's completed requests under
	// QoS relative to FIFO: at least 80% of the FIFO count.
	qosBulkOKMin = 0.8

	qosLatClass  = "lat"
	qosBulkClass = "bulk"
)

// QoSRun is one side of the comparison: the per-class loadgen report
// of a single trace replay.
type QoSRun struct {
	Classes []loadgen.ClassReport `json:"classes"`
	Totals  loadgen.ClassReport   `json:"totals"`
}

func (r *QoSRun) class(name string) *loadgen.ClassReport {
	for i := range r.Classes {
		if r.Classes[i].Name == name {
			return &r.Classes[i]
		}
	}
	return nil
}

// QoSReport is the BENCH_qos.json schema.
type QoSReport struct {
	Host       Host    `json:"host"`
	Quick      bool    `json:"quick,omitempty"`
	OfferedRPS float64 `json:"offered_rps"`
	FIFO       QoSRun  `json:"fifo"`
	QoS        QoSRun  `json:"qos"`
	// LatP99Ratio is qos/fifo for the latency class's p99 (lower is
	// better); BulkOKRatio is qos/fifo for the bulk class's completed
	// requests (higher is better).
	LatP99Ratio float64 `json:"lat_p99_ratio"`
	BulkOKRatio float64 `json:"bulk_ok_ratio"`
}

// qosSpec is the two-class overload both runs replay: half the offered
// requests are small latency-sensitive sorts, half bulk, at an
// aggregate rate chosen past the serving knee (BENCH_capacity sits
// near 400 req/s on the reference host) so the queue is where requests
// spend their time and scheduling order is what decides p99. Quick
// mode uses deterministic interarrivals and a short horizon so the CI
// smoke is schedule-stable.
func qosSpec(quick bool) *loadgen.Spec {
	s := &loadgen.Spec{
		Seed:      23,
		HorizonMs: 3000,
		Classes: []loadgen.ClassSpec{
			{
				Name:     qosLatClass,
				Arrival:  loadgen.ArrivalSpec{Dist: loadgen.DistPoisson, Rate: 250},
				Size:     loadgen.SizeSpec{Dist: loadgen.SizeFixed, N: 192},
				KeySpace: 1000,
				Weight:   1,
			},
			{
				Name:    qosBulkClass,
				Arrival: loadgen.ArrivalSpec{Dist: loadgen.DistPoisson, Rate: 250},
				Size:    loadgen.SizeSpec{Dist: loadgen.SizeUniform, Min: 1 << 10, Max: 1 << 12},
				Weight:  1,
			},
		},
	}
	if quick {
		s.HorizonMs = 600
		for i := range s.Classes {
			s.Classes[i].Arrival.Dist = loadgen.DistDet
			s.Classes[i].Arrival.Shape = 0
		}
	}
	return s
}

// qosConfig is the QoS side's plane config: buckets sized well above
// the offered rates (admission is not what this gate measures — the
// scheduler is), the latency class at the most urgent tier, bulk two
// tiers down, default aging. No deadlines: shedding has its own tests;
// here every admitted request should be a scheduling decision.
func qosConfig(spec *loadgen.Spec) *qos.Config {
	cfg := &qos.Config{AgingMs: 100}
	for _, c := range spec.Classes {
		prio := 0
		if c.Name == qosBulkClass {
			prio = 2
		}
		cfg.Classes = append(cfg.Classes, qos.ClassQoS{
			Name:     c.Name,
			Rate:     2 * c.Arrival.Rate,
			Burst:    256,
			Priority: prio,
		})
	}
	return cfg
}

// runQoS is the -qos entry point, sharing run's flag values. The
// baseline file must exist outside quick/-write mode — the gate never
// compares against it (see the file comment), but its absence means
// the certification record was never produced.
func runQoS(w io.Writer, baseline, out string, write, quick bool) error {
	if !write {
		if _, err := readQoSReport(baseline); err != nil {
			if !(quick && os.IsNotExist(err)) {
				return fmt.Errorf("reading baseline: %w (run with -qos -write to create it)", err)
			}
		}
	}

	rep, err := measureQoS(w, quick)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "qos/fifo: lat p99 ratio %.2f (gate <= %.2f), bulk ok ratio %.2f (gate >= %.2f)\n",
		rep.LatP99Ratio, qosLatP99Max, rep.BulkOKRatio, qosBulkOKMin)
	if out != "" {
		if err := writeQoSReport(out, rep); err != nil {
			return err
		}
	}
	if write {
		if err := writeQoSReport(baseline, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "qos baseline written to %s\n", baseline)
		return nil
	}

	// Correctness gates in every mode.
	for _, run := range []struct {
		name string
		r    *QoSRun
	}{{"fifo", &rep.FIFO}, {"qos", &rep.QoS}} {
		if n := run.r.Totals.Unsorted; n > 0 {
			return fmt.Errorf("%s run returned %d unsorted bodies", run.name, n)
		}
		if n := run.r.Totals.Errors; n > 0 {
			return fmt.Errorf("%s run hit %d transport errors", run.name, n)
		}
	}

	failures := compareQoS(rep)
	for _, f := range failures {
		fmt.Fprintln(w, "REGRESSION:", f)
	}
	if quick {
		fmt.Fprintf(w, "qos smoke passed: both runs sorted every body (%d ratio deviations reported, not gated)\n",
			len(failures))
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d qos gate(s) failed", len(failures))
	}
	fmt.Fprintf(w, "qos gate passed: lat p99 %.2fx fifo, bulk throughput %.2fx fifo\n",
		rep.LatP99Ratio, rep.BulkOKRatio)
	return nil
}

func measureQoS(w io.Writer, quick bool) (*QoSReport, error) {
	spec := qosSpec(quick)
	trace, err := loadgen.BuildTrace(spec)
	if err != nil {
		return nil, err
	}

	fifo, err := replayQoSTrace(trace, nil)
	if err != nil {
		return nil, fmt.Errorf("fifo run: %w", err)
	}
	fmt.Fprintf(w, "fifo: lat p99 %.1f ms (%d ok), bulk %d ok\n",
		classP99(fifo, qosLatClass), classOK(fifo, qosLatClass), classOK(fifo, qosBulkClass))

	qosd, err := replayQoSTrace(trace, qosConfig(spec))
	if err != nil {
		return nil, fmt.Errorf("qos run: %w", err)
	}
	fmt.Fprintf(w, "qos:  lat p99 %.1f ms (%d ok), bulk %d ok\n",
		classP99(qosd, qosLatClass), classOK(qosd, qosLatClass), classOK(qosd, qosBulkClass))

	rep := &QoSReport{
		Host:       hostFingerprint(),
		Quick:      quick,
		OfferedRPS: spec.TotalRate(),
		FIFO:       *fifo,
		QoS:        *qosd,
	}
	if p := classP99(fifo, qosLatClass); p > 0 {
		rep.LatP99Ratio = classP99(qosd, qosLatClass) / p
	}
	if n := classOK(fifo, qosBulkClass); n > 0 {
		rep.BulkOKRatio = float64(classOK(qosd, qosBulkClass)) / float64(n)
	}
	return rep, nil
}

// replayQoSTrace boots a fresh in-process server — batching off so
// every request is its own scheduling decision, pipeline on so the
// bounded queue (where the policy acts) is the bottleneck — replays
// the trace against it, and aggregates the per-class report. cfg nil
// is the FIFO control.
func replayQoSTrace(trace *loadgen.Trace, cfg *qos.Config) (*QoSRun, error) {
	srv, err := server.New(server.Config{
		PipelineDepth: 64,
		MaxInFlight:   256,
		BatchMaxKeys:  -1,
		Timeout:       5 * time.Second,
		QoS:           cfg,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	res := loadgen.Run(context.Background(), trace, &loadgen.HandlerTarget{Handler: srv.Handler()})
	rep := loadgen.BuildReport(res)
	return &QoSRun{Classes: rep.Classes, Totals: rep.Totals}, nil
}

func classP99(r *QoSRun, name string) float64 {
	if c := r.class(name); c != nil {
		return c.P99Ms
	}
	return 0
}

func classOK(r *QoSRun, name string) int {
	if c := r.class(name); c != nil {
		return c.OK
	}
	return 0
}

// compareQoS runs the ratio gates (see the file comment): absolute
// thresholds on the within-run ratios, which makes the gate valid on
// any host without a comparable baseline.
func compareQoS(cur *QoSReport) []string {
	var failures []string
	if cur.LatP99Ratio <= 0 {
		failures = append(failures, "lat p99 ratio is unmeasurable: the fifo run completed no latency-class requests")
	} else if cur.LatP99Ratio > qosLatP99Max {
		failures = append(failures, fmt.Sprintf(
			"lat p99 under qos is %.2fx fifo, above the %.2f bound — the priority tiers bought no latency win",
			cur.LatP99Ratio, qosLatP99Max))
	}
	if cur.BulkOKRatio <= 0 {
		failures = append(failures, "bulk ok ratio is unmeasurable: the fifo run completed no bulk requests")
	} else if cur.BulkOKRatio < qosBulkOKMin {
		failures = append(failures, fmt.Sprintf(
			"bulk throughput under qos is %.2fx fifo, below the %.2f floor — priority became starvation",
			cur.BulkOKRatio, qosBulkOKMin))
	}
	return failures
}

func readQoSReport(path string) (*QoSReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r QoSReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeQoSReport(path string, r *QoSReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
