// Command benchgate is the native fast path's regression gate. It
// times the real-goroutine sort across a layout × workers × size
// matrix (P ∈ {1, 4, 8, GOMAXPROCS}, N up to 1M), writes the
// measurements as JSON, and fails if throughput regressed more than
// the tolerance against the checked-in baseline (BENCH_native.json).
//
// Usage:
//
//	benchgate [-baseline BENCH_native.json] [-out FILE] [-write]
//	          [-quick] [-observed] [-runs 3] [-tolerance 0.10] [-serve]
//
// With -serve the gate targets the serving layer instead (pooled vs
// fresh sort throughput and sortd request throughput, baseline
// BENCH_serve.json — see serve.go). With -pipeline it targets the
// phase-pipelined crew (pipelined vs serial-team throughput on queued
// mixed-size sorts, baseline BENCH_pipeline.json — see pipeline.go).
// With -capacity it sweeps open-loop load for the SLO knee (baseline
// BENCH_capacity.json — see capacity.go), and with -qos it replays a
// two-class overload FIFO vs QoS-scheduled and gates the priority
// plane's latency win and starvation floor (baseline BENCH_qos.json —
// see qos.go). With -cluster it measures the distributed tier — the
// sample-sort coordinator over 1/2/3 admission-bucketed backends plus
// a backend-kill chaos leg — and gates the 3-backend scaling ratio and
// the kill leg's byte-identical output (baseline BENCH_cluster.json —
// see cluster.go). With -wire it compares binary vs JSON request
// throughput through the serving path and gates the binary codec's
// large-request speedup (baseline BENCH_wire.json — see wire.go).
//
// Three gates run, strongest applicable first; all act on geometric
// means over the whole matrix because individual wall-time cells are
// too noisy to gate at any useful tolerance (see compare):
//
//   - On the machine that produced the baseline (same GOOS/GOARCH,
//     GOMAXPROCS and CPU count), the geomean absolute throughput must
//     be within tolerance of the baseline's.
//   - On any machine, the geomean sharded/flat throughput ratio — the
//     speedup the contention-sharded layout exists to deliver, which
//     is machine-relative by construction — must be within tolerance
//     of the baseline's.
//   - With -observed, extra sharded cells run with the internal/obs
//     observability plane installed, and the geomean observed/
//     unobserved ratio must stay within tolerance of 1 — the observer
//     hook is sold as near-free, and this gate keeps it honest. The
//     ratio is measured within the current run, so it needs no
//     baseline cells and works on any host. A second -observed leg
//     boots the serving stack with the full request-trace plane on
//     (stage clocks, exemplars, SLO burn monitor) against a TraceOff
//     twin and holds the traced/plain request-throughput ratio to the
//     same tolerance (see observed.go).
//
// -quick runs a reduced matrix as a correctness smoke (sortedness is
// always verified) and reports, but never fails on, performance.
// -write regenerates the baseline file instead of gating against it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"wfsort"
)

// Host fingerprints the machine a report was measured on. Absolute
// throughput numbers are only comparable when fingerprints match.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"goversion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
}

func hostFingerprint() Host {
	return Host{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// comparable reports whether absolute numbers from the two hosts can
// be gated against each other. The Go version is informational only —
// a toolchain upgrade should surface as a (gated) perf change, not
// silently disable the gate.
func (h Host) comparable(o Host) bool {
	return h.GOOS == o.GOOS && h.GOARCH == o.GOARCH &&
		h.GOMAXPROCS == o.GOMAXPROCS && h.NumCPU == o.NumCPU
}

// Result is one cell of the matrix: median-of-runs throughput for a
// (layout, workers, size) combination.
type Result struct {
	Layout      string  `json:"layout"`
	P           int     `json:"p"`
	N           int     `json:"n"`
	Observed    bool    `json:"observed,omitempty"`
	ElemsPerSec float64 `json:"elems_per_sec"`
	Runs        int     `json:"runs"`
}

func (r Result) cell() string {
	obs := ""
	if r.Observed {
		obs = "+obs"
	}
	return fmt.Sprintf("%s%s/p%d/n%d", r.Layout, obs, r.P, r.N)
}

// Report is the BENCH_native.json schema.
type Report struct {
	Host    Host     `json:"host"`
	Results []Result `json:"results"`
}

// index keys a report's cells for comparison.
func (r *Report) index() map[string]Result {
	m := make(map[string]Result, len(r.Results))
	for _, res := range r.Results {
		m[res.cell()] = res
	}
	return m
}

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baseline := fs.String("baseline", "BENCH_native.json", "baseline report to gate against")
	out := fs.String("out", "", "also write the fresh report to this file")
	write := fs.Bool("write", false, "regenerate the baseline file instead of gating")
	quick := fs.Bool("quick", false, "reduced matrix; verify sortedness but never fail on perf")
	observed := fs.Bool("observed", false, "add observer-installed cells and gate the observer overhead")
	runs := fs.Int("runs", 3, "timed runs per cell (best is kept)")
	tol := fs.Float64("tolerance", 0.10, "allowed fractional throughput regression")
	serve := fs.Bool("serve", false, "gate the serving layer (pooled vs fresh, sortd req/s) instead of the native matrix")
	pipeline := fs.Bool("pipeline", false, "gate phase-pipelined vs serial-team throughput on queued sorts instead of the native matrix")
	capacity := fs.Bool("capacity", false, "gate the serving stack's capacity-curve knee (open-loop loadgen sweep vs an SLO) instead of the native matrix")
	qosMode := fs.Bool("qos", false, "gate the QoS plane (priority scheduling vs FIFO on a two-class overload) instead of the native matrix")
	clusterMode := fs.Bool("cluster", false, "gate the distributed sort tier (coordinator scaling over 1/2/3 backends + kill leg) instead of the native matrix")
	wireMode := fs.Bool("wire", false, "gate the binary wire codec (binary vs JSON request throughput on the serving path) instead of the native matrix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := 0
	for _, m := range []bool{*serve, *pipeline, *capacity, *qosMode, *clusterMode, *wireMode} {
		if m {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-serve, -pipeline, -capacity, -qos, -cluster and -wire are mutually exclusive")
	}
	if *serve {
		if *baseline == "BENCH_native.json" {
			*baseline = "BENCH_serve.json"
		}
		return runServe(w, *baseline, *out, *write, *quick, *runs, *tol)
	}
	if *pipeline {
		if *baseline == "BENCH_native.json" {
			*baseline = "BENCH_pipeline.json"
		}
		return runPipeline(w, *baseline, *out, *write, *quick, *runs, *tol)
	}
	if *capacity {
		if *baseline == "BENCH_native.json" {
			*baseline = "BENCH_capacity.json"
		}
		return runCapacity(w, *baseline, *out, *write, *quick, *tol)
	}
	if *qosMode {
		if *baseline == "BENCH_native.json" {
			*baseline = "BENCH_qos.json"
		}
		return runQoS(w, *baseline, *out, *write, *quick)
	}
	if *clusterMode {
		if *baseline == "BENCH_native.json" {
			*baseline = "BENCH_cluster.json"
		}
		return runCluster(w, *baseline, *out, *write, *quick, *tol)
	}
	if *wireMode {
		if *baseline == "BENCH_native.json" {
			*baseline = "BENCH_wire.json"
		}
		return runWire(w, *baseline, *out, *write, *quick, *runs, *tol)
	}

	// Read the baseline before measuring anything: a mistyped path
	// should fail in milliseconds, not after the whole matrix ran.
	var base *Report
	if !*write {
		b, err := readReport(*baseline)
		if err != nil {
			if !(*quick && os.IsNotExist(err)) {
				return fmt.Errorf("reading baseline: %w (run with -write to create it)", err)
			}
		} else {
			base = b
		}
	}

	rep, err := measureMatrix(w, matrix(*quick, *observed), *runs)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := writeReport(*out, rep); err != nil {
			return err
		}
	}
	if *write {
		if err := writeReport(*baseline, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "baseline written to %s (%d cells)\n", *baseline, len(rep.Results))
		return nil
	}
	if base == nil && !*observed {
		fmt.Fprintf(w, "no baseline at %s; smoke passed (sortedness verified)\n", *baseline)
		return nil
	}
	var failures []string
	if base != nil {
		failures = compare(base, rep, *tol)
	}
	if *observed {
		// The serving-layer leg of the observer gate: the full trace
		// plane (stage clocks, exemplars, burn monitor) vs TraceOff,
		// gated on the in-run ratio like the native observer cells.
		obsFailures, err := runObservedServe(w, *quick, *runs, *tol)
		if err != nil {
			return err
		}
		failures = append(failures, obsFailures...)
	}
	for _, f := range failures {
		fmt.Fprintln(w, "REGRESSION:", f)
	}
	if *quick {
		fmt.Fprintf(w, "smoke passed: %d cells sorted correctly (%d perf deviations reported, not gated)\n",
			len(rep.Results), len(failures))
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d gate(s) regressed beyond %.0f%% against baseline %s", len(failures), *tol*100, *baseline)
	}
	fmt.Fprintf(w, "gate passed: %d cells, geomeans within %.0f%% of baseline\n", len(rep.Results), *tol*100)
	return nil
}

// cellSpec names one measurement to take.
type cellSpec struct {
	layout   wfsort.Layout
	p, n     int
	observed bool
}

// matrix lists the cells to measure. The full matrix is every layout
// at P ∈ {1, 4, 8, GOMAXPROCS} and N ∈ {64Ki, 256Ki, 1Mi}; quick mode
// keeps one small and one medium size at two worker counts for the
// sharded and flat layouts only. With observed, every sharded cell is
// doubled with an observer-installed twin for the overhead gate.
func matrix(quick, observed bool) []cellSpec {
	workers := []int{1, 4, 8}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 && g != 8 {
		workers = append(workers, g)
	}
	sizes := []int{1 << 16, 1 << 18, 1 << 20}
	layouts := wfsort.Layouts()
	if quick {
		workers = []int{4, runtime.GOMAXPROCS(0)}
		if workers[0] == workers[1] {
			workers = workers[:1]
		}
		sizes = []int{1 << 14, 1 << 16}
		layouts = []wfsort.Layout{wfsort.LayoutSharded, wfsort.LayoutFlat}
	}
	var cells []cellSpec
	for _, l := range layouts {
		for _, p := range workers {
			for _, n := range sizes {
				cells = append(cells, cellSpec{l, p, n, false})
				if observed && l == wfsort.LayoutSharded {
					cells = append(cells, cellSpec{l, p, n, true})
				}
			}
		}
	}
	return cells
}

// measureMatrix times every cell and assembles the report. Sortedness
// of every run's output is verified — a wrong sort is an error no
// matter the mode.
func measureMatrix(w io.Writer, cells []cellSpec, runs int) (*Report, error) {
	if runs < 1 {
		runs = 1
	}
	rep := &Report{Host: hostFingerprint()}
	for _, c := range cells {
		r, err := measure(c, runs)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-22s %12.0f elems/s\n", r.cell(), r.ElemsPerSec)
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// measure times one cell: the median over runs timed wall-clock sorts
// of a fixed pseudo-random permutation, after one untimed warmup. The
// garbage collector is flushed before each timed run so a previous
// cell's allocation debt cannot be charged to this one; the median
// (rather than the minimum) keeps a single lucky run in the baseline
// from making every later gate run look like a regression.
func measure(c cellSpec, runs int) (Result, error) {
	base := rand.New(rand.NewSource(int64(c.n) + int64(c.p))).Perm(c.n)
	data := make([]int, c.n)
	times := make([]time.Duration, 0, runs)
	for r := 0; r <= runs; r++ {
		copy(data, base)
		runtime.GC()
		opts := []wfsort.Option{wfsort.WithWorkers(c.p), wfsort.WithLayout(c.layout)}
		if c.observed {
			// One observer per run: like the runtime, an Observer
			// drives at most one sort.
			opts = append(opts, wfsort.WithObserver(wfsort.NewObserver()))
		}
		start := time.Now()
		err := wfsort.Sort(data, opts...)
		elapsed := time.Since(start)
		if err != nil {
			return Result{}, fmt.Errorf("%s/p%d/n%d: %w", c.layout, c.p, c.n, err)
		}
		if !sort.IntsAreSorted(data) {
			return Result{}, fmt.Errorf("%s/p%d/n%d: output not sorted", c.layout, c.p, c.n)
		}
		if r > 0 { // run 0 is the warmup
			times = append(times, elapsed)
		}
	}
	return Result{
		Layout:      c.layout.String(),
		P:           c.p,
		N:           c.n,
		Observed:    c.observed,
		ElemsPerSec: float64(c.n) / median(times).Seconds(),
		Runs:        runs,
	}, nil
}

// median returns the middle element (lower-middle for even counts) of
// the measured durations.
func median(d []time.Duration) time.Duration {
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// compare gates cur against base and returns one message per failed
// gate. Single cells are far too noisy to gate on directly (wall time
// on a loaded machine jitters well past any useful tolerance), so
// both gates act on the geometric mean of the per-cell change across
// the whole matrix, where independent per-cell noise averages out:
//
//   - absolute throughput (only between comparable hosts): the
//     geomean of cur/base across matching cells must not fall below
//     1 − tol;
//   - the sharded/flat speedup (any host): the geomean of the
//     per-(P, N) ratio change must not fall below 1 − tol;
//   - the observer overhead (any host, only when observed cells were
//     measured): the geomean observed/unobserved throughput ratio,
//     taken within cur alone, must not fall below 1 − tol.
//
// Failure messages name the worst cell as the place to start looking.
func compare(base, cur *Report, tol float64) []string {
	var failures []string
	bi, ci := base.index(), cur.index()

	if base.Host.comparable(cur.Host) {
		var logSum float64
		cells := 0
		worst, worstCell := 1.0, ""
		for _, c := range cur.Results {
			b, ok := bi[c.cell()]
			if !ok || b.ElemsPerSec <= 0 || c.ElemsPerSec <= 0 {
				continue
			}
			change := c.ElemsPerSec / b.ElemsPerSec
			logSum += math.Log(change)
			cells++
			if change < worst {
				worst, worstCell = change, c.cell()
			}
		}
		if cells > 0 {
			if g := math.Exp(logSum / float64(cells)); g < 1-tol {
				failures = append(failures, fmt.Sprintf(
					"throughput: geomean %.1f%% below baseline over %d cells (worst %s at %.1f%%)",
					100*(1-g), cells, worstCell, 100*(1-worst)))
			}
		}
	}

	var logSum float64
	cells := 0
	worst, worstCell := 1.0, ""
	for _, c := range cur.Results {
		if c.Layout != wfsort.LayoutSharded.String() || c.Observed {
			continue
		}
		flatCell := Result{Layout: wfsort.LayoutFlat.String(), P: c.P, N: c.N}.cell()
		cf, okCF := ci[flatCell]
		bs, okBS := bi[c.cell()]
		bf, okBF := bi[flatCell]
		if !okCF || !okBS || !okBF || cf.ElemsPerSec <= 0 || bf.ElemsPerSec <= 0 {
			continue
		}
		curRatio := c.ElemsPerSec / cf.ElemsPerSec
		baseRatio := bs.ElemsPerSec / bf.ElemsPerSec
		change := curRatio / baseRatio
		logSum += math.Log(change)
		cells++
		if change < worst {
			worst, worstCell = change, fmt.Sprintf("p%d/n%d (%.2fx vs %.2fx)", c.P, c.N, curRatio, baseRatio)
		}
	}
	if cells > 0 {
		if g := math.Exp(logSum / float64(cells)); g < 1-tol {
			failures = append(failures, fmt.Sprintf(
				"ratio sharded/flat: geomean %.1f%% below baseline over %d cells (worst %s)",
				100*(1-g), cells, worstCell))
		}
	}

	logSum, cells = 0, 0
	worst, worstCell = 1.0, ""
	for _, c := range cur.Results {
		if !c.Observed {
			continue
		}
		plain := Result{Layout: c.Layout, P: c.P, N: c.N}.cell()
		cp, ok := ci[plain]
		if !ok || cp.ElemsPerSec <= 0 {
			continue
		}
		change := c.ElemsPerSec / cp.ElemsPerSec
		logSum += math.Log(change)
		cells++
		if change < worst {
			worst, worstCell = change, fmt.Sprintf("p%d/n%d (%.1f%% overhead)", c.P, c.N, 100*(1-change))
		}
	}
	if cells > 0 {
		if g := math.Exp(logSum / float64(cells)); g < 1-tol {
			failures = append(failures, fmt.Sprintf(
				"observer overhead: geomean %.1f%% throughput loss with the observer installed over %d cells (worst %s)",
				100*(1-g), cells, worstCell))
		}
	}
	return failures
}

func readReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeReport(path string, r *Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
