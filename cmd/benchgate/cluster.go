package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"wfsort/internal/cluster"
	"wfsort/internal/qos"
	"wfsort/internal/server"
)

// The -cluster mode gates the distributed sort tier: a sample-sort
// coordinator (internal/cluster) over 1, 2 and 3 in-process sortd
// backends, measured on a closed-loop batch of multi-shard jobs, plus
// a backend-kill chaos leg.
//
// On a single box, N in-process backends share the same cores, so raw
// CPU cannot scale with the fleet. What does scale — and what this
// gate measures — is admitted capacity: every backend carries the same
// per-host QoS token bucket (the admission plane every real sortd
// deploys with), each shard spends one admission token on its backend,
// and a fleet of N holds N buckets. The coordinator's job is to turn
// those N independent buckets into N times the single-backend job
// rate; splitter cost, scatter/merge overhead and retry slop all eat
// into the multiple. The 3-backend/1-backend throughput ratio is
// therefore a host-independent measure of coordinator efficiency, and
// the gate requires it to stay >= minScale3 (1.8x): a coordinator that
// serializes its fan-out, loses admission slots to misrouting, or
// burns its budget on spurious retries fails on any machine.
//
// Gates:
//
//   - unconditional, any mode: every job's output verifies (the
//     coordinator's own ledger plus a reference-sort comparison here),
//     and the kill leg completes with at least one redispatch and
//     output byte-identical to the faultless run. A ledger mismatch
//     additionally dumps cluster-ledger-mismatch.json for the CI
//     artifact trail.
//   - non-quick: scale3 >= 1.8.
//   - against a comparable-host baseline: per-fleet-size jobs/s within
//     the (widened) tolerance.
const (
	minScale3 = 1.8
	// clusterTokenRate/Burst shape each backend's admission bucket: low
	// enough that admission — not the shared CPU — is the binding
	// resource (12 shards/s admits 4 jobs/s per backend, far below the
	// slowest single-core compute rate), which is what makes the
	// scaling ratio host-independent.
	clusterTokenRate  = 12.0
	clusterTokenBurst = 3
	// clusterShardKeys and clusterJobKeys fix the fan-out: every job is
	// exactly jobShards shards, so tokens spent scale with work done.
	clusterShardKeys = 8192
	clusterJobKeys   = 3 * clusterShardKeys
	jobShards        = 3
)

// ledgerArtifact is the cluster-ledger-mismatch.json schema: enough to
// reconstruct which leg lost or duplicated what.
const ledgerArtifactPath = "cluster-ledger-mismatch.json"

type ledgerArtifact struct {
	Leg      string        `json:"leg"`
	Backends int           `json:"backends"`
	JobKeys  int           `json:"job_keys"`
	Error    string        `json:"error"`
	Stats    cluster.Stats `json:"stats"`
}

// ClusterPoint is one fleet size's measurement.
type ClusterPoint struct {
	Backends            int     `json:"backends"`
	Jobs                int     `json:"jobs"`
	JobsPerSec          float64 `json:"jobs_per_sec"`
	KeysPerSec          float64 `json:"keys_per_sec"`
	Redispatches        int64   `json:"redispatches"`
	BackpressureRetries int64   `json:"backpressure_retries"`
}

func (p ClusterPoint) cell() string { return fmt.Sprintf("cluster/b%d", p.Backends) }

// ClusterReport is the BENCH_cluster.json schema.
type ClusterReport struct {
	Host             Host           `json:"host"`
	Quick            bool           `json:"quick,omitempty"`
	TokenRate        float64        `json:"token_rate"`
	TokenBurst       int            `json:"token_burst"`
	ShardKeys        int            `json:"shard_keys"`
	JobKeys          int            `json:"job_keys"`
	Points           []ClusterPoint `json:"points"`
	Scale3           float64        `json:"scale3"`
	KillRedispatches int64          `json:"kill_redispatches"`
	KillIdentical    bool           `json:"kill_identical"`
}

// runCluster is the -cluster entry point, sharing run's flag values.
func runCluster(w io.Writer, baseline, out string, write, quick bool, tol float64) error {
	var base *ClusterReport
	if !write {
		b, err := readClusterReport(baseline)
		if err != nil {
			if !(quick && os.IsNotExist(err)) {
				return fmt.Errorf("reading baseline: %w (run with -cluster -write to create it)", err)
			}
		} else {
			base = b
		}
	}

	rep, err := measureCluster(w, quick)
	if err != nil {
		return err
	}
	if out != "" {
		if err := writeClusterReport(out, rep); err != nil {
			return err
		}
	}
	if write {
		if err := writeClusterReport(baseline, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "cluster baseline written to %s (%d points)\n", baseline, len(rep.Points))
		return nil
	}

	// Correctness gates in every mode: measureCluster already verified
	// each job; the kill leg's two promises are checked here.
	if !rep.KillIdentical {
		return fmt.Errorf("kill leg output differs from the faultless run")
	}
	if rep.KillRedispatches == 0 {
		return fmt.Errorf("kill leg recorded no redispatches — the chaos leg did not bite")
	}

	failures := compareCluster(base, rep, tol, quick)
	for _, f := range failures {
		fmt.Fprintln(w, "REGRESSION:", f)
	}
	if quick {
		fmt.Fprintf(w, "cluster smoke passed: %d points verified, kill leg byte-identical with %d redispatches (%d perf deviations reported, not gated)\n",
			len(rep.Points), rep.KillRedispatches, len(failures))
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d cluster gate(s) failed against baseline %s", len(failures), baseline)
	}
	fmt.Fprintf(w, "cluster gate passed: scale3 %.2fx >= %.1fx, kill leg byte-identical (%d redispatches)\n",
		rep.Scale3, minScale3, rep.KillRedispatches)
	return nil
}

// newClusterFleet boots n in-process sortd backends, each with its own
// admission bucket for the "cluster" class, and returns the transports
// plus a teardown.
func newClusterFleet(n int) ([]cluster.Transport, func(), error) {
	fleet := make([]cluster.Transport, 0, n)
	var servers []*server.Server
	stop := func() {
		for _, s := range servers {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			s.Shutdown(ctx)
			cancel()
		}
	}
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{
			MaxInFlight: 64,
			TraceOff:    true,
			QoS: &qos.Config{Classes: []qos.ClassQoS{
				{Name: "cluster", Rate: clusterTokenRate, Burst: clusterTokenBurst, Priority: 1},
			}},
		})
		if err != nil {
			stop()
			return nil, nil, err
		}
		servers = append(servers, srv)
		fleet = append(fleet, &cluster.HandlerBackend{Handler: srv.Handler(), Label: fmt.Sprintf("b%d", i)})
	}
	return fleet, stop, nil
}

func clusterJob(seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, clusterJobKeys)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	return keys
}

func measureCluster(w io.Writer, quick bool) (*ClusterReport, error) {
	jobs, issuers := 48, 6
	if quick {
		jobs = 8
	}
	rep := &ClusterReport{
		Host:       hostFingerprint(),
		Quick:      quick,
		TokenRate:  clusterTokenRate,
		TokenBurst: clusterTokenBurst,
		ShardKeys:  clusterShardKeys,
		JobKeys:    clusterJobKeys,
	}

	for _, nb := range []int{1, 2, 3} {
		p, err := measureClusterPoint(nb, jobs, issuers)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-12s %8.1f jobs/s %12.0f keys/s (redispatch=%d bp=%d)\n",
			p.cell(), p.JobsPerSec, p.KeysPerSec, p.Redispatches, p.BackpressureRetries)
		rep.Points = append(rep.Points, p)
	}
	rep.Scale3 = rep.Points[2].JobsPerSec / rep.Points[0].JobsPerSec
	fmt.Fprintf(w, "scale3: %.2fx (3-backend vs 1-backend job rate)\n", rep.Scale3)

	redispatches, identical, err := measureKillLeg(w)
	if err != nil {
		return nil, err
	}
	rep.KillRedispatches = redispatches
	rep.KillIdentical = identical
	return rep, nil
}

// measureClusterPoint runs the closed-loop batch against an nb-backend
// fleet: issuers goroutines each pull the next job, sort it through
// the coordinator and verify it against the reference sort.
func measureClusterPoint(nb, jobs, issuers int) (ClusterPoint, error) {
	fleet, stop, err := newClusterFleet(nb)
	if err != nil {
		return ClusterPoint{}, err
	}
	defer stop()
	c, err := cluster.New(cluster.Config{Backends: fleet, ShardKeys: clusterShardKeys, Seed: 3})
	if err != nil {
		return ClusterPoint{}, err
	}
	defer c.Close()

	var (
		mu      sync.Mutex
		firstEB error
		next    int
		wg      sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < issuers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstEB != nil || next >= jobs {
					mu.Unlock()
					return
				}
				j := next
				next++
				mu.Unlock()
				keys := clusterJob(int64(1000 + j))
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				out, err := c.Sort(ctx, "cluster", fmt.Sprintf("bg-%d", j), keys)
				cancel()
				if err == nil {
					err = verifyClusterOut(keys, out)
				}
				if err != nil {
					mu.Lock()
					if firstEB == nil {
						firstEB = fmt.Errorf("job %d on %d backends: %w", j, nb, err)
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := c.Stats()
	if firstEB != nil {
		maybeDumpLedger("throughput", nb, firstEB, st)
		return ClusterPoint{}, firstEB
	}
	return ClusterPoint{
		Backends:            nb,
		Jobs:                jobs,
		JobsPerSec:          float64(jobs) / elapsed.Seconds(),
		KeysPerSec:          float64(jobs) * float64(clusterJobKeys) / elapsed.Seconds(),
		Redispatches:        st.Redispatches,
		BackpressureRetries: st.BackpressureRetries,
	}, nil
}

// measureKillLeg runs the chaos leg: the same job sorted by a
// faultless 3-backend fleet and by one whose first backend fail-stops
// after a single shard request — with a 9-shard job over 3 backends,
// that backend still owes shards when it dies, so the kill lands
// mid-fan-out. The outputs must be byte-identical and the kill run
// must have redispatched.
func measureKillLeg(w io.Writer) (int64, bool, error) {
	rng := rand.New(rand.NewSource(424242))
	keys := make([]int64, 9*clusterShardKeys)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}

	runOnce := func(kill bool) ([]int64, cluster.Stats, error) {
		fleet, stop, err := newClusterFleet(3)
		if err != nil {
			return nil, cluster.Stats{}, err
		}
		defer stop()
		if kill {
			ks := &cluster.KillSwitch{T: fleet[0]}
			ks.KillAfter(1)
			fleet[0] = ks
		}
		c, err := cluster.New(cluster.Config{
			Backends:  fleet,
			ShardKeys: clusterShardKeys,
			Seed:      3,
			CoolDown:  time.Minute, // stay down for the whole leg
		})
		if err != nil {
			return nil, cluster.Stats{}, err
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		out, err := c.Sort(ctx, "cluster", "kill-leg", keys)
		return out, c.Stats(), err
	}

	ref, _, err := runOnce(false)
	if err != nil {
		return 0, false, fmt.Errorf("kill leg reference run: %w", err)
	}
	out, st, err := runOnce(true)
	if err != nil {
		maybeDumpLedger("kill", 3, err, st)
		return 0, false, fmt.Errorf("kill leg: %w", err)
	}
	if err := verifyClusterOut(keys, out); err != nil {
		return 0, false, fmt.Errorf("kill leg: %w", err)
	}
	identical := clusterBytes(out) == clusterBytes(ref)
	fmt.Fprintf(w, "kill leg: %d redispatches, byte-identical=%v\n", st.Redispatches, identical)
	return st.Redispatches, identical, nil
}

// verifyClusterOut checks a job's output against the reference sort —
// the gate's own verification, independent of the coordinator's
// ledger.
func verifyClusterOut(sent, got []int64) error {
	want := append([]int64(nil), sent...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		return fmt.Errorf("output has %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}

func clusterBytes(keys []int64) string {
	raw := make([]byte, 8*len(keys))
	for i, v := range keys {
		binary.LittleEndian.PutUint64(raw[8*i:], uint64(v))
	}
	return string(raw)
}

// maybeDumpLedger writes the CI artifact when a failure involves the
// coordinator's ledger — the one failure class where "which counters
// said what" is the whole investigation.
func maybeDumpLedger(leg string, backends int, err error, st cluster.Stats) {
	if err == nil || st.LedgerFailures == 0 {
		return
	}
	b, mErr := json.MarshalIndent(ledgerArtifact{
		Leg:      leg,
		Backends: backends,
		JobKeys:  clusterJobKeys,
		Error:    err.Error(),
		Stats:    st,
	}, "", "  ")
	if mErr != nil {
		return
	}
	os.WriteFile(ledgerArtifactPath, append(b, '\n'), 0o644)
}

// compareCluster runs the perf gates (correctness gated earlier).
func compareCluster(base, cur *ClusterReport, tol float64, quick bool) []string {
	var failures []string
	if cur.Scale3 < minScale3 {
		failures = append(failures, fmt.Sprintf(
			"cluster scaling: 3 backends deliver only %.2fx the 1-backend job rate (floor %.1fx)",
			cur.Scale3, minScale3))
	}
	if base == nil || !base.Host.comparable(cur.Host) || base.Quick != cur.Quick {
		return failures
	}
	bi := make(map[string]ClusterPoint, len(base.Points))
	for _, p := range base.Points {
		bi[p.cell()] = p
	}
	t := clusterTolerance(tol)
	for _, p := range cur.Points {
		b, ok := bi[p.cell()]
		if !ok || b.JobsPerSec <= 0 {
			continue
		}
		if change := p.JobsPerSec / b.JobsPerSec; change < 1-t {
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f jobs/s is %.1f%% below the baseline's %.1f",
				p.cell(), p.JobsPerSec, 100*(1-change), b.JobsPerSec))
		}
	}
	return failures
}

// clusterTolerance widens the flag tolerance: closed-loop job rates
// against token buckets are stable, but retry backoff adds jitter.
func clusterTolerance(tol float64) float64 { return max(tol, 0.20) }

func readClusterReport(path string) (*ClusterReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ClusterReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeClusterReport(path string, r *ClusterReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
