package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func wireReport(host Host, sortJSON, sortBin, shardJSON, shardBin float64, large int) *WireReport {
	return &WireReport{Host: host, Results: []WireResult{
		{Endpoint: "sort", Codec: "json", N: large, ReqPerSec: sortJSON, Runs: 3},
		{Endpoint: "sort", Codec: "binary", N: large, ReqPerSec: sortBin, Runs: 3},
		{Endpoint: "shard", Codec: "json", N: large, ReqPerSec: shardJSON, Runs: 3},
		{Endpoint: "shard", Codec: "binary", N: large, ReqPerSec: shardBin, Runs: 3},
	}}
}

func TestCompareWireSpeedupFloor(t *testing.T) {
	h := hostFingerprint()
	// Binary well above the floor on both endpoints: clean.
	cur := wireReport(h, 100, 180, 100, 180, 1<<17)
	if f := compareWire(nil, cur, 1<<17, 0.10); len(f) != 0 {
		t.Fatalf("1.8x speedup gated: %v", f)
	}
	// Exactly at the floor still passes; below it fires, naming the
	// endpoint that fell.
	cur = wireReport(h, 100, 100*wireMinSpeedup, 100, 180, 1<<17)
	if f := compareWire(nil, cur, 1<<17, 0.10); len(f) != 0 {
		t.Fatalf("floor-touching speedup gated: %v", f)
	}
	cur = wireReport(h, 100, 110, 100, 180, 1<<17)
	f := compareWire(nil, cur, 1<<17, 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "sort/n131072") {
		t.Fatalf("1.10x speedup not gated: %v", f)
	}
	// Both endpoints below: two failures.
	cur = wireReport(h, 100, 110, 100, 105, 1<<17)
	if f := compareWire(nil, cur, 1<<17, 0.10); len(f) != 2 {
		t.Fatalf("double miss produced %d failures: %v", len(f), f)
	}
}

func TestCompareWireBaselineGates(t *testing.T) {
	h := hostFingerprint()
	base := wireReport(h, 100, 200, 100, 200, 1<<17)

	// Identical run: clean.
	cur := wireReport(h, 100, 200, 100, 200, 1<<17)
	if f := compareWire(base, cur, 1<<17, 0.10); len(f) != 0 {
		t.Fatalf("identical run gated: %v", f)
	}
	// Everything 20% slower on a comparable host: the absolute gate
	// fires, the ratio gate (unchanged at 2x) stays quiet.
	cur = wireReport(h, 80, 160, 80, 160, 1<<17)
	f := compareWire(base, cur, 1<<17, 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "request throughput") {
		t.Fatalf("20%% absolute regression: %v", f)
	}
	// Same regression on a different host: the absolute gate is
	// disarmed, and nothing fires.
	other := h
	other.NumCPU++
	cur = wireReport(other, 80, 160, 80, 160, 1<<17)
	if f := compareWire(base, cur, 1<<17, 0.10); len(f) != 0 {
		t.Fatalf("cross-host absolute numbers gated: %v", f)
	}
	// The binary/json ratio collapsing from 2x to 1.4x fires the
	// host-independent ratio gate even cross-host (1.4x still clears
	// the in-run floor).
	cur = wireReport(other, 100, 140, 100, 140, 1<<17)
	f = compareWire(base, cur, 1<<17, 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "ratio binary/json") {
		t.Fatalf("ratio collapse not gated: %v", f)
	}
}

func TestCompareWireSkipsUnknownCells(t *testing.T) {
	h := hostFingerprint()
	base := wireReport(h, 100, 200, 100, 200, 1<<17)
	// A current run at different sizes shares no cells with the
	// baseline: only the in-run floor applies.
	cur := wireReport(h, 100, 200, 100, 200, 1<<14)
	if f := compareWire(base, cur, 1<<14, 0.10); len(f) != 0 {
		t.Fatalf("disjoint cells gated: %v", f)
	}
}

func TestWireReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wire.json")
	rep := wireReport(hostFingerprint(), 100, 200, 100, 200, 1<<17)
	if err := writeWireReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := readWireReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(rep.Results) || got.Host != rep.Host {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	for i := range rep.Results {
		if got.Results[i] != rep.Results[i] {
			t.Fatalf("cell %d: %+v != %+v", i, got.Results[i], rep.Results[i])
		}
	}
}
