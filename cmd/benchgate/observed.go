package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"wfsort/internal/server"
)

// The -observed flag, besides doubling the native matrix with
// observer-installed cells, exercises the serving stack end to end: a
// fully instrumented server (request tracing, stage attribution,
// exemplar sampling and the SLO burn monitor all live) races one built
// with Config.TraceOff against the same request stream, interleaved
// run by run so machine drift biases neither side, and the in-run
// geomean traced/plain request-throughput ratio must stay within
// tolerance of 1. Like the native observer gate, the ratio is measured
// within the current run — no baseline cells, works on any host.

// runObservedServe measures the trace plane's serving overhead and
// returns gate failures (empty when within tolerance).
func runObservedServe(w io.Writer, quick bool, runs int, tol float64) ([]string, error) {
	if runs < 1 {
		runs = 1
	}
	sizes := []int{64, 4096}
	reqs := 400
	if quick {
		reqs = 80
	}
	var logSum float64
	cells := 0
	worst, worstCell := math.Inf(1), ""
	for _, n := range sizes {
		traced, plain, err := measureObservedPair(n, reqs, runs)
		if err != nil {
			return nil, err
		}
		ratio := traced / plain
		fmt.Fprintf(w, "%-22s %12.0f req/s (plain %.0f, ratio %.3f)\n",
			fmt.Sprintf("serve+trace/n%d", n), traced, plain, ratio)
		logSum += math.Log(ratio)
		cells++
		if ratio < worst {
			worst, worstCell = ratio, fmt.Sprintf("n%d (%.1f%% overhead)", n, 100*(1-ratio))
		}
	}
	if cells == 0 {
		return nil, nil
	}
	g := math.Exp(logSum / float64(cells))
	fmt.Fprintf(w, "trace plane overhead: geomean traced/plain %.3fx over %d cells\n", g, cells)
	if g < 1-tol {
		return []string{fmt.Sprintf(
			"trace plane: geomean %.1f%% request-throughput loss with full instrumentation over %d cells (worst %s)",
			100*(1-g), cells, worstCell)}, nil
	}
	return nil, nil
}

// measureObservedPair times one request size through an instrumented
// server and its TraceOff twin. Both servers live for the whole cell
// (their sort pools stay warm) and the two sides alternate within each
// run so thermal or noisy-neighbor drift cancels in the ratio.
func measureObservedPair(n, reqs, runs int) (tracedRPS, plainRPS float64, err error) {
	newSrv := func(traceOff bool) (*server.Server, error) {
		cfg := server.Config{
			Workers:     4,
			MaxInFlight: 64,
			BatchWindow: time.Millisecond,
			TraceOff:    traceOff,
		}
		if !traceOff {
			// A generous SLO keeps the burn monitor observing every
			// request without ever paging — the cost we meter is the
			// recording, not an incident.
			cfg.SLO = 5 * time.Second
		}
		return server.New(cfg)
	}
	tracedSrv, err := newSrv(false)
	if err != nil {
		return 0, 0, err
	}
	defer tracedSrv.Shutdown(context.Background())
	plainSrv, err := newSrv(true)
	if err != nil {
		return 0, 0, err
	}
	defer plainSrv.Shutdown(context.Background())

	tracedTimes := make([]time.Duration, 0, runs)
	plainTimes := make([]time.Duration, 0, runs)
	for r := 0; r <= runs; r++ {
		runtime.GC()
		tt, err := driveHandler(tracedSrv.Handler(), n, reqs, true)
		if err != nil {
			return 0, 0, fmt.Errorf("traced/n%d: %w", n, err)
		}
		runtime.GC()
		pt, err := driveHandler(plainSrv.Handler(), n, reqs, false)
		if err != nil {
			return 0, 0, fmt.Errorf("plain/n%d: %w", n, err)
		}
		if r > 0 { // run 0 is warmup: pools built, batcher primed
			tracedTimes = append(tracedTimes, tt)
			plainTimes = append(plainTimes, pt)
		}
	}
	work := float64(reqs)
	return work / median(tracedTimes).Seconds(), work / median(plainTimes).Seconds(), nil
}

// driveHandler posts reqs fixed-size sort requests from 4 concurrent
// clients straight into the handler (no sockets) and verifies every
// response. The traced side stamps X-Trace-Id so the full accept-echo
// path runs, not just the minting shortcut.
func driveHandler(h http.Handler, n, reqs int, stampTrace bool) (time.Duration, error) {
	const clients = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(n) + int64(c)))
			for i := 0; i < reqs/clients; i++ {
				keys := make([]int64, n)
				for k := range keys {
					keys[k] = int64(rng.Intn(1 << 20))
				}
				body, _ := json.Marshal(map[string]any{"keys": keys})
				req := httptest.NewRequest(http.MethodPost, "/sort", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				if stampTrace {
					req.Header.Set("X-Trace-Id", fmt.Sprintf("bg-%d-%d", c, i))
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errCh <- fmt.Errorf("status %d", rec.Code)
					return
				}
				var out struct {
					Sorted []int64 `json:"sorted"`
				}
				if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
					errCh <- err
					return
				}
				if len(out.Sorted) != n || !sort.SliceIsSorted(out.Sorted, func(a, b int) bool {
					return out.Sorted[a] < out.Sorted[b]
				}) {
					errCh <- fmt.Errorf("bad response body (n=%d)", len(out.Sorted))
					return
				}
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}
