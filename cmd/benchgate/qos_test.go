package main

import (
	"path/filepath"
	"strings"
	"testing"

	"wfsort/internal/loadgen"
)

func qosReport(lat, bulk float64) *QoSReport {
	return &QoSReport{Host: hostFingerprint(), LatP99Ratio: lat, BulkOKRatio: bulk}
}

func TestCompareQoSGates(t *testing.T) {
	// Both ratios inside their bounds: clean.
	if f := compareQoS(qosReport(0.5, 1.0)); len(f) != 0 {
		t.Fatalf("passing ratios gated: %v", f)
	}
	// The bounds themselves are still passing — the gate is on
	// crossing them, not touching them.
	if f := compareQoS(qosReport(qosLatP99Max, qosBulkOKMin)); len(f) != 0 {
		t.Fatalf("boundary ratios gated: %v", f)
	}
	// No latency win: the lat gate fires.
	f := compareQoS(qosReport(0.95, 1.0))
	if len(f) != 1 || !strings.Contains(f[0], "no latency win") {
		t.Fatalf("lat ratio 0.95 not gated: %v", f)
	}
	// Starved bulk: the throughput floor fires.
	f = compareQoS(qosReport(0.5, 0.5))
	if len(f) != 1 || !strings.Contains(f[0], "starvation") {
		t.Fatalf("bulk ratio 0.5 not gated: %v", f)
	}
	// Unmeasurable ratios (an empty FIFO side) are their own failure,
	// not a silent pass.
	f = compareQoS(qosReport(0, 0))
	if len(f) != 2 || !strings.Contains(f[0], "unmeasurable") {
		t.Fatalf("zero ratios not flagged: %v", f)
	}
}

func TestQoSSpecAndConfigValidate(t *testing.T) {
	for _, quick := range []bool{false, true} {
		s := qosSpec(quick)
		if err := s.Validate(); err != nil {
			t.Fatalf("qosSpec(quick=%v) invalid: %v", quick, err)
		}
		if err := qosConfig(s).Validate(); err != nil {
			t.Fatalf("qosConfig(quick=%v) invalid: %v", quick, err)
		}
		// The mix is the contract: exactly the two classes the gate
		// reads back out of the reports, at equal offered rates.
		if len(s.Classes) != 2 || s.Classes[0].Name != qosLatClass || s.Classes[1].Name != qosBulkClass {
			t.Fatalf("qosSpec classes: %+v", s.Classes)
		}
		if s.Classes[0].Arrival.Rate != s.Classes[1].Arrival.Rate {
			t.Fatalf("qos mix is not 50/50: %v vs %v", s.Classes[0].Arrival.Rate, s.Classes[1].Arrival.Rate)
		}
	}
}

func TestQoSReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_qos.json")
	in := qosReport(0.4, 0.97)
	in.OfferedRPS = 500
	in.FIFO.Classes = []loadgen.ClassReport{{Name: qosLatClass, OK: 7, P99Ms: 80}}
	if err := writeQoSReport(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readQoSReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.LatP99Ratio != 0.4 || out.BulkOKRatio != 0.97 || out.OfferedRPS != 500 {
		t.Fatalf("round-trip mangled the report: %+v", out)
	}
	if c := out.FIFO.class(qosLatClass); c == nil || c.P99Ms != 80 {
		t.Fatalf("round-trip lost the class report: %+v", out.FIFO)
	}
	if out.FIFO.class("ghost") != nil {
		t.Fatal("class lookup invented a class")
	}
}

// TestRunQoSQuickSmoke drives the full -qos quick path end to end:
// trace build, both server boots, replay, ratio computation — gating
// only correctness, exactly as the CI smoke leg runs it.
func TestRunQoSQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two servers and replays a trace twice")
	}
	out := filepath.Join(t.TempDir(), "BENCH_qos.json")
	var buf strings.Builder
	if err := runQoS(&buf, out, "", true, true); err != nil {
		t.Fatalf("write run: %v\n%s", err, buf.String())
	}
	buf.Reset()
	if err := runQoS(&buf, out, "", false, true); err != nil {
		t.Fatalf("quick gate run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "qos smoke passed") {
		t.Fatalf("no smoke confirmation:\n%s", buf.String())
	}
}
