package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"wfsort/internal/server"
	"wfsort/internal/wire"
)

// The -wire mode gates the binary codec's reason to exist: request
// throughput through the full serving path (decode, sort, encode) must
// be materially higher over the wire codec than over JSON on large
// bodies, where codec cost is a real share of request time.
//
// Cells are {sort, shard} × {json, binary} × {medium, large} request
// sizes, measured against the in-process handler — no sockets, so the
// comparison isolates codec + serving cost from the network stack. The
// two codecs interleave run by run on one server instance, so machine
// drift biases neither side.
//
// Gates:
//
//   - In-run, any host, no baseline needed: the binary/json req/s
//     ratio on each large-request cell must be >= wireMinSpeedup. This
//     is the codec's contract — fall below it and shipping two codecs
//     is pure complexity.
//   - Against a comparable-host baseline (BENCH_wire.json): geomean
//     absolute req/s within tolerance.
//   - Any host: the geomean binary/json ratio change vs the baseline's
//     within tolerance.
//
// -quick shrinks sizes and request counts and reports without failing,
// as everywhere else in benchgate.

// wireMinSpeedup is the hard floor on the large-cell binary/json
// request-throughput ratio.
const wireMinSpeedup = 1.15

// WireResult is one cell: median-of-runs request throughput for an
// (endpoint, codec, size) combination.
type WireResult struct {
	Endpoint  string  `json:"endpoint"` // sort | shard
	Codec     string  `json:"codec"`    // json | binary
	N         int     `json:"n"`
	ReqPerSec float64 `json:"req_per_sec"`
	Runs      int     `json:"runs"`
}

func (r WireResult) cell() string {
	return fmt.Sprintf("%s/%s/n%d", r.Endpoint, r.Codec, r.N)
}

// WireReport is the BENCH_wire.json schema.
type WireReport struct {
	Host    Host         `json:"host"`
	Results []WireResult `json:"results"`
}

func (r *WireReport) index() map[string]WireResult {
	m := make(map[string]WireResult, len(r.Results))
	for _, res := range r.Results {
		m[res.cell()] = res
	}
	return m
}

// runWire is the -wire entry point, sharing run's flag values.
func runWire(w io.Writer, baseline, out string, write, quick bool, runs int, tol float64) error {
	var base *WireReport
	if !write {
		b, err := readWireReport(baseline)
		if err != nil {
			if !(quick && os.IsNotExist(err)) {
				return fmt.Errorf("reading baseline: %w (run with -wire -write to create it)", err)
			}
		} else {
			base = b
		}
	}

	rep, large, err := measureWireMatrix(w, quick, runs)
	if err != nil {
		return err
	}
	if out != "" {
		if err := writeWireReport(out, rep); err != nil {
			return err
		}
	}
	if write {
		if err := writeWireReport(baseline, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "wire baseline written to %s (%d cells)\n", baseline, len(rep.Results))
		return nil
	}

	failures := compareWire(base, rep, large, tol)
	for _, f := range failures {
		fmt.Fprintln(w, "REGRESSION:", f)
	}
	if quick {
		fmt.Fprintf(w, "wire smoke passed: %d cells correct (%d perf deviations reported, not gated)\n",
			len(rep.Results), len(failures))
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d wire gate(s) failed against baseline %s", len(failures), baseline)
	}
	fmt.Fprintf(w, "wire gate passed: %d cells (large-cell binary/json >= %.2fx, baselines within %.0f%%)\n",
		len(rep.Results), wireMinSpeedup, tol*100)
	return nil
}

// measureWireMatrix runs every cell and returns the report plus the
// large size whose cells carry the in-run speedup gate.
func measureWireMatrix(w io.Writer, quick bool, runs int) (*WireReport, int, error) {
	if runs < 1 {
		runs = 1
	}
	medium, large := 1<<14, 1<<17
	if quick {
		medium, large = 1<<12, 1<<14
	}
	rep := &WireReport{Host: hostFingerprint()}
	for _, endpoint := range []string{"sort", "shard"} {
		for _, n := range []int{medium, large} {
			jr, br, err := measureWirePair(endpoint, n, runs)
			if err != nil {
				return nil, 0, err
			}
			for _, r := range []WireResult{jr, br} {
				fmt.Fprintf(w, "%-26s %12.1f req/s\n", r.cell(), r.ReqPerSec)
				rep.Results = append(rep.Results, r)
			}
			fmt.Fprintf(w, "%-26s %12.2fx\n",
				fmt.Sprintf("%s/binary:json/n%d", endpoint, n), br.ReqPerSec/jr.ReqPerSec)
		}
	}
	return rep, large, nil
}

// measureWirePair times one (endpoint, size) cell under both codecs,
// interleaved run by run on one server instance. Each request's reply
// is decoded and order-verified inside the timed window — the client
// side of the codec is part of what the wire format buys.
func measureWirePair(endpoint string, n, runs int) (jsonRes, binRes WireResult, err error) {
	srv, err := server.New(server.Config{Workers: 4, MaxInFlight: 64, TraceOff: true})
	if err != nil {
		return WireResult{}, WireResult{}, err
	}
	defer srv.Shutdown(context.Background())
	handler := srv.Handler()

	rng := rand.New(rand.NewSource(int64(n)))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	jsonBody, err := json.Marshal(map[string]any{"keys": keys})
	if err != nil {
		return WireResult{}, WireResult{}, err
	}
	binBody := wire.AppendBlock(nil, wire.KindRequest, keys)
	path := "/" + endpoint

	oneReq := func(binary bool) error {
		body, contentType := jsonBody, "application/json"
		if binary {
			body, contentType = binBody, wire.ContentType
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("%s n=%d: status %d", path, n, rec.Code)
		}
		var sorted []int64
		if binary {
			wantKind := byte(wire.KindReply)
			if endpoint == "shard" {
				wantKind = wire.KindShardReply
			}
			sorted, _, err = wire.ReadBlock(rec.Body, wantKind, 0)
			if err != nil {
				return fmt.Errorf("%s n=%d: %w", path, n, err)
			}
		} else {
			var out struct {
				Sorted []int64 `json:"sorted"`
			}
			if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
				return fmt.Errorf("%s n=%d: %w", path, n, err)
			}
			sorted = out.Sorted
		}
		if len(sorted) != n || !sort.SliceIsSorted(sorted, func(a, b int) bool {
			return sorted[a] < sorted[b]
		}) {
			return fmt.Errorf("%s n=%d: bad reply (%d keys)", path, n, len(sorted))
		}
		return nil
	}

	iters := 1 << 19 / n
	if iters < 4 {
		iters = 4
	}
	timeRun := func(binary bool) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := oneReq(binary); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	jsonTimes := make([]time.Duration, 0, runs)
	binTimes := make([]time.Duration, 0, runs)
	for r := 0; r <= runs; r++ {
		tb, err := timeRun(true)
		if err != nil {
			return WireResult{}, WireResult{}, err
		}
		tj, err := timeRun(false)
		if err != nil {
			return WireResult{}, WireResult{}, err
		}
		if r > 0 { // run 0 warms the pool and the heap
			binTimes = append(binTimes, tb)
			jsonTimes = append(jsonTimes, tj)
		}
	}
	work := float64(iters)
	jsonRes = WireResult{Endpoint: endpoint, Codec: "json", N: n,
		ReqPerSec: work / median(jsonTimes).Seconds(), Runs: runs}
	binRes = WireResult{Endpoint: endpoint, Codec: "binary", N: n,
		ReqPerSec: work / median(binTimes).Seconds(), Runs: runs}
	return jsonRes, binRes, nil
}

// compareWire runs the wire gates: the in-run large-cell speedup floor
// (no baseline needed), then the baseline gates when one is present.
func compareWire(base, cur *WireReport, large int, tol float64) []string {
	var failures []string
	ci := cur.index()

	// Gate 1: binary must beat JSON by the contract margin on every
	// large cell, measured within this run.
	for _, endpoint := range []string{"sort", "shard"} {
		b, okB := ci[WireResult{Endpoint: endpoint, Codec: "binary", N: large}.cell()]
		j, okJ := ci[WireResult{Endpoint: endpoint, Codec: "json", N: large}.cell()]
		if !okB || !okJ || j.ReqPerSec <= 0 {
			continue
		}
		if ratio := b.ReqPerSec / j.ReqPerSec; ratio < wireMinSpeedup {
			failures = append(failures, fmt.Sprintf(
				"wire speedup: %s/n%d binary/json %.2fx < %.2fx — the binary codec no longer pays for itself",
				endpoint, large, ratio, wireMinSpeedup))
		}
	}

	if base == nil {
		return failures
	}
	bi := base.index()

	// Gate 2 (comparable hosts): absolute req/s geomean within tolerance.
	if base.Host.comparable(cur.Host) {
		var logSum float64
		cells := 0
		worst, worstCell := 1.0, ""
		for _, c := range cur.Results {
			b, ok := bi[c.cell()]
			if !ok || b.ReqPerSec <= 0 || c.ReqPerSec <= 0 {
				continue
			}
			change := c.ReqPerSec / b.ReqPerSec
			logSum += math.Log(change)
			cells++
			if change < worst {
				worst, worstCell = change, c.cell()
			}
		}
		if cells > 0 {
			if g := math.Exp(logSum / float64(cells)); g < 1-tol {
				failures = append(failures, fmt.Sprintf(
					"request throughput: geomean %.1f%% below baseline over %d cells (worst %s at %.1f%%)",
					100*(1-g), cells, worstCell, 100*(1-worst)))
			}
		}
	}

	// Gate 3 (any host): the binary/json ratio's change vs baseline.
	var logSum float64
	cells := 0
	worst, worstCell := 1.0, ""
	for _, c := range cur.Results {
		if c.Codec != "binary" {
			continue
		}
		jsonCell := WireResult{Endpoint: c.Endpoint, Codec: "json", N: c.N}.cell()
		cj, okCJ := ci[jsonCell]
		bb, okBB := bi[c.cell()]
		bj, okBJ := bi[jsonCell]
		if !okCJ || !okBB || !okBJ || cj.ReqPerSec <= 0 || bj.ReqPerSec <= 0 || bb.ReqPerSec <= 0 {
			continue
		}
		change := (c.ReqPerSec / cj.ReqPerSec) / (bb.ReqPerSec / bj.ReqPerSec)
		logSum += math.Log(change)
		cells++
		if change < worst {
			worst, worstCell = change, fmt.Sprintf("%s/n%d", c.Endpoint, c.N)
		}
	}
	if cells > 0 {
		if g := math.Exp(logSum / float64(cells)); g < 1-tol {
			failures = append(failures, fmt.Sprintf(
				"ratio binary/json vs baseline: geomean %.1f%% below over %d cells (worst %s)",
				100*(1-g), cells, worstCell))
		}
	}
	return failures
}

func readWireReport(path string) (*WireReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r WireReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeWireReport(path string, r *WireReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
