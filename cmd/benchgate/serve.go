package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"wfsort"
	"wfsort/internal/server"
)

// The -serve mode gates the serving layer the same way the default
// mode gates the native fast path:
//
//   - pooled vs fresh sort throughput across a (P, N) matrix. The
//     in-run geomean pooled/fresh ratio must stay >= 1: context
//     pooling exists to beat rebuilding arenas, so the moment it stops
//     paying for itself the gate fails (any host, no baseline needed).
//   - sortd request throughput, faultless and with half the workers
//     crash-stopped per sort (the wait-freedom serving claim measured:
//     crash-half must still serve, and its req/s is tracked against
//     the baseline).
//   - against a comparable-host baseline (BENCH_serve.json), geomean
//     sort throughput and request throughput must be within tolerance.
//
// In -quick mode everything still runs (correctness always verified)
// but, as in the default mode, deviations are reported without
// failing.

// ServeResult is one cell of the serving matrix. Sort cells carry
// ElemsPerSec; serve cells carry ReqPerSec.
type ServeResult struct {
	Mode        string  `json:"mode"` // pooled | fresh | serve | serve-crashhalf
	P           int     `json:"p"`
	N           int     `json:"n"`
	ElemsPerSec float64 `json:"elems_per_sec,omitempty"`
	ReqPerSec   float64 `json:"req_per_sec,omitempty"`
	Runs        int     `json:"runs"`
}

func (r ServeResult) cell() string {
	return fmt.Sprintf("%s/p%d/n%d", r.Mode, r.P, r.N)
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	Host    Host          `json:"host"`
	Results []ServeResult `json:"results"`
}

func (r *ServeReport) index() map[string]ServeResult {
	m := make(map[string]ServeResult, len(r.Results))
	for _, res := range r.Results {
		m[res.cell()] = res
	}
	return m
}

// runServe is the -serve entry point, sharing run's flag values.
func runServe(w io.Writer, baseline, out string, write, quick bool, runs int, tol float64) error {
	var base *ServeReport
	if !write {
		b, err := readServeReport(baseline)
		if err != nil {
			if !(quick && os.IsNotExist(err)) {
				return fmt.Errorf("reading baseline: %w (run with -serve -write to create it)", err)
			}
		} else {
			base = b
		}
	}

	rep, err := measureServeMatrix(w, quick, runs)
	if err != nil {
		return err
	}
	if out != "" {
		if err := writeServeReport(out, rep); err != nil {
			return err
		}
	}
	if write {
		if err := writeServeReport(baseline, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "serve baseline written to %s (%d cells)\n", baseline, len(rep.Results))
		return nil
	}

	failures := compareServe(base, rep, tol)
	for _, f := range failures {
		fmt.Fprintln(w, "REGRESSION:", f)
	}
	if quick {
		fmt.Fprintf(w, "serve smoke passed: %d cells correct (%d perf deviations reported, not gated)\n",
			len(rep.Results), len(failures))
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d serve gate(s) failed against baseline %s", len(failures), baseline)
	}
	fmt.Fprintf(w, "serve gate passed: %d cells (pooled/fresh geomean >= 1, baselines within %.0f%%)\n",
		len(rep.Results), tol*100)
	return nil
}

func measureServeMatrix(w io.Writer, quick bool, runs int) (*ServeReport, error) {
	if runs < 1 {
		runs = 1
	}
	workers := []int{1, 4}
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	serveReqs := 400
	if quick {
		workers = []int{min(2, runtime.GOMAXPROCS(0)*2)}
		sizes = []int{1 << 12, 1 << 14}
		serveReqs = 80
	}
	rep := &ServeReport{Host: hostFingerprint()}
	emit := func(r ServeResult, unit string, v float64) {
		fmt.Fprintf(w, "%-26s %12.0f %s\n", r.cell(), v, unit)
		rep.Results = append(rep.Results, r)
	}
	for _, p := range workers {
		for _, n := range sizes {
			pooled, fresh, err := measureSortPair(p, n, runs)
			if err != nil {
				return nil, err
			}
			emit(pooled, "elems/s", pooled.ElemsPerSec)
			emit(fresh, "elems/s", fresh.ElemsPerSec)
		}
	}
	for _, mode := range []string{"serve", "serve-crashhalf"} {
		r, err := measureServeCell(mode, serveReqs, runs)
		if err != nil {
			return nil, err
		}
		emit(r, "req/s", r.ReqPerSec)
	}
	return rep, nil
}

// measureSortPair times sustained back-to-back sorts of one size
// through both the reusable pooled Sorter and the fresh one-shot path,
// alternating the two run by run so slow machine drift (thermal,
// noisy-neighbor) biases neither side, and verifies every output. Each
// timed run covers a whole batch of sorts so allocation and GC costs
// land inside the window — a server never gets a free collection
// between requests, so neither do these cells. (An earlier version
// GC'd before each op, which quietly credited the fresh path with
// exactly the work pooling removes.)
func measureSortPair(p, n, runs int) (pooled, fresh ServeResult, err error) {
	base := rand.New(rand.NewSource(int64(n) + int64(p))).Perm(n)
	data := make([]int, n)
	sorter, err := wfsort.NewSorter[int](wfsort.WithWorkers(p))
	if err != nil {
		return ServeResult{}, ServeResult{}, err
	}
	defer sorter.Close()

	sortOnce := func(viaPool bool) error {
		copy(data, base)
		var err error
		if viaPool {
			err = sorter.Sort(data)
		} else {
			err = wfsort.Sort(data, wfsort.WithWorkers(p))
		}
		if err != nil {
			return fmt.Errorf("p%d/n%d: %w", p, n, err)
		}
		if !sort.IntsAreSorted(data) {
			return fmt.Errorf("p%d/n%d: output not sorted", p, n)
		}
		return nil
	}
	iters := max(8, 1<<17/n)
	timeRun := func(viaPool bool) (time.Duration, error) {
		runtime.GC() // start each run from the same heap state
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := sortOnce(viaPool); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	pooledTimes := make([]time.Duration, 0, runs)
	freshTimes := make([]time.Duration, 0, runs)
	for r := 0; r <= runs; r++ {
		tp, err := timeRun(true)
		if err != nil {
			return ServeResult{}, ServeResult{}, err
		}
		tf, err := timeRun(false)
		if err != nil {
			return ServeResult{}, ServeResult{}, err
		}
		if r > 0 { // run 0 is warmup: pool classes built, heap shaped
			pooledTimes = append(pooledTimes, tp)
			freshTimes = append(freshTimes, tf)
		}
	}
	work := float64(n) * float64(iters)
	pooled = ServeResult{Mode: "pooled", P: p, N: n,
		ElemsPerSec: work / median(pooledTimes).Seconds(), Runs: runs}
	fresh = ServeResult{Mode: "fresh", P: p, N: n,
		ElemsPerSec: work / median(freshTimes).Seconds(), Runs: runs}
	return pooled, fresh, nil
}

// measureServeCell boots the sort service in-process and measures
// request throughput from concurrent clients posting mixed-size
// bodies. The crash-half mode fail-stops half of each sort's workers,
// so its number is the paper's serving claim measured: the service
// keeps answering correctly at a bounded discount.
func measureServeCell(mode string, reqs, runs int) (ServeResult, error) {
	const p = 4
	cfg := server.Config{
		Workers:     p,
		MaxInFlight: 64,
		BatchWindow: time.Millisecond,
	}
	if mode == "serve-crashhalf" {
		cfg.Options = []wfsort.Option{wfsort.WithCrashes(0.5, 0), wfsort.WithSeed(7)}
	}
	times := make([]time.Duration, 0, runs)
	for r := 0; r <= runs; r++ {
		srv, err := server.New(cfg)
		if err != nil {
			return ServeResult{}, err
		}
		ts := httptest.NewServer(srv.Handler())
		elapsed, err := driveClients(ts.URL, reqs)
		ts.Close()
		srv.Shutdown(context.Background()) // no deadline: the drain must complete
		if err != nil {
			return ServeResult{}, fmt.Errorf("%s: %w", mode, err)
		}
		if r > 0 {
			times = append(times, elapsed)
		}
	}
	return ServeResult{
		Mode: mode, P: p, N: reqs,
		ReqPerSec: float64(reqs) / median(times).Seconds(),
		Runs:      runs,
	}, nil
}

// driveClients posts reqs sort requests from 4 concurrent clients and
// verifies every response body.
func driveClients(url string, reqs int) (time.Duration, error) {
	const clients = 4
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < reqs/clients; i++ {
				n := 64
				if i%3 == 0 {
					n = 4096
				}
				keys := make([]int64, n)
				for k := range keys {
					keys[k] = int64(rng.Intn(10000))
				}
				body, _ := json.Marshal(map[string]any{"keys": keys})
				resp, err := http.Post(url+"/sort", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				var out struct {
					Sorted []int64 `json:"sorted"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if len(out.Sorted) != n || !sort.SliceIsSorted(out.Sorted, func(a, b int) bool {
					return out.Sorted[a] < out.Sorted[b]
				}) {
					errCh <- fmt.Errorf("bad response body (n=%d)", len(out.Sorted))
					return
				}
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// compareServe runs the serve gates. The pooled/fresh >= 1 gate needs
// no baseline; the others engage when one is present.
func compareServe(base, cur *ServeReport, tol float64) []string {
	var failures []string
	ci := cur.index()

	// Gate 1, in-run and unconditional: geomean pooled/fresh >= 1.
	var logSum float64
	cells := 0
	worst, worstCell := math.Inf(1), ""
	for _, c := range cur.Results {
		if c.Mode != "pooled" {
			continue
		}
		f, ok := ci[ServeResult{Mode: "fresh", P: c.P, N: c.N}.cell()]
		if !ok || f.ElemsPerSec <= 0 {
			continue
		}
		ratio := c.ElemsPerSec / f.ElemsPerSec
		logSum += math.Log(ratio)
		cells++
		if ratio < worst {
			worst, worstCell = ratio, fmt.Sprintf("p%d/n%d (%.2fx)", c.P, c.N, ratio)
		}
	}
	if cells > 0 {
		if g := math.Exp(logSum / float64(cells)); g < 1 {
			failures = append(failures, fmt.Sprintf(
				"pooled/fresh: geomean %.2fx < 1.00x over %d cells (worst %s) — pooling no longer pays for itself",
				g, cells, worstCell))
		}
	}

	if base == nil {
		return failures
	}
	bi := base.index()

	// Gate 2 (comparable hosts): absolute geomeans within tolerance,
	// sort cells and serve cells each as their own gate.
	if base.Host.comparable(cur.Host) {
		for _, kind := range []struct {
			name string
			pick func(ServeResult) float64
		}{
			{"sort throughput", func(r ServeResult) float64 { return r.ElemsPerSec }},
			{"request throughput", func(r ServeResult) float64 { return r.ReqPerSec }},
		} {
			logSum, cells = 0, 0
			worst, worstCell = 1.0, ""
			for _, c := range cur.Results {
				b, ok := bi[c.cell()]
				if !ok || kind.pick(b) <= 0 || kind.pick(c) <= 0 {
					continue
				}
				change := kind.pick(c) / kind.pick(b)
				logSum += math.Log(change)
				cells++
				if change < worst {
					worst, worstCell = change, c.cell()
				}
			}
			if cells > 0 {
				if g := math.Exp(logSum / float64(cells)); g < 1-tol {
					failures = append(failures, fmt.Sprintf(
						"%s: geomean %.1f%% below baseline over %d cells (worst %s at %.1f%%)",
						kind.name, 100*(1-g), cells, worstCell, 100*(1-worst)))
				}
			}
		}
	}

	// Gate 3 (any host): the pooled/fresh ratio's change vs baseline.
	logSum, cells = 0, 0
	worst, worstCell = 1.0, ""
	for _, c := range cur.Results {
		if c.Mode != "pooled" {
			continue
		}
		freshCell := ServeResult{Mode: "fresh", P: c.P, N: c.N}.cell()
		cf, okCF := ci[freshCell]
		bp, okBP := bi[c.cell()]
		bf, okBF := bi[freshCell]
		if !okCF || !okBP || !okBF || cf.ElemsPerSec <= 0 || bf.ElemsPerSec <= 0 || bp.ElemsPerSec <= 0 {
			continue
		}
		change := (c.ElemsPerSec / cf.ElemsPerSec) / (bp.ElemsPerSec / bf.ElemsPerSec)
		logSum += math.Log(change)
		cells++
		if change < worst {
			worst, worstCell = change, fmt.Sprintf("p%d/n%d", c.P, c.N)
		}
	}
	if cells > 0 {
		if g := math.Exp(logSum / float64(cells)); g < 1-tol {
			failures = append(failures, fmt.Sprintf(
				"ratio pooled/fresh vs baseline: geomean %.1f%% below over %d cells (worst %s)",
				100*(1-g), cells, worstCell))
		}
	}
	return failures
}

func readServeReport(path string) (*ServeReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ServeReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeServeReport(path string, r *ServeReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
