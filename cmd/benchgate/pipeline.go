package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/native"
)

// The -pipeline mode gates phase-level pipelining crew against crew:
// the same mixed-size job stream pushed through one resident serial
// Team (every job boundary is a full-crew barrier — the driver Waits
// for job k before Starting job k+1) and through one phase-pipelined
// crew of the same P (job k+1 admitted into phase 1 once every worker
// is past phase 1 of job k). Pipelining exists to beat the barrier, so
// the in-run geomean pipelined/serial throughput ratio must stay >= 1
// on mixed-size streams — an unconditional gate needing no baseline,
// like the pooled/fresh gate of -serve. Against a comparable-host
// baseline (BENCH_pipeline.json) the absolute geomean is gated too.
//
// The two modes are timed in alternating order run by run so slow
// machine drift biases neither side, and every job's output is
// verified (and its arena reset) between timed runs.

// PipeResult is one cell: sustained sort throughput for a (mode, P)
// crew over the mixed-size job stream.
type PipeResult struct {
	Mode        string  `json:"mode"` // pipelined | serial
	P           int     `json:"p"`
	Depth       int     `json:"depth,omitempty"`
	Jobs        int     `json:"jobs"`
	SortsPerSec float64 `json:"sorts_per_sec"`
	// RatioToSerial (pipelined cells only) is the median of the per-run
	// pipelined/serial throughput ratios. Each run times both modes
	// back to back, so the ratio is a paired sample — machine regime
	// shifts hit both halves and cancel, where a quotient of
	// independently taken medians would not.
	RatioToSerial float64 `json:"ratio_to_serial,omitempty"`
	Runs          int     `json:"runs"`
}

func (r PipeResult) cell() string {
	return fmt.Sprintf("%s/p%d", r.Mode, r.P)
}

// PipeReport is the BENCH_pipeline.json schema.
type PipeReport struct {
	Host    Host         `json:"host"`
	Results []PipeResult `json:"results"`
}

func (r *PipeReport) index() map[string]PipeResult {
	m := make(map[string]PipeResult, len(r.Results))
	for _, res := range r.Results {
		m[res.cell()] = res
	}
	return m
}

// pipeSizes is the mixed-size job stream every cell sorts; three size
// classes, so job boundaries (where the serial barrier hurts) come at
// an uneven rhythm.
var pipeSizes = []int{1 << 6, 1 << 7, 1 << 9}

// runPipeline is the -pipeline entry point, sharing run's flag values.
func runPipeline(w io.Writer, baseline, out string, write, quick bool, runs int, tol float64) error {
	var base *PipeReport
	if !write {
		b, err := readPipeReport(baseline)
		if err != nil {
			if !(quick && os.IsNotExist(err)) {
				return fmt.Errorf("reading baseline: %w (run with -pipeline -write to create it)", err)
			}
		} else {
			base = b
		}
	}

	rep, err := measurePipelineMatrix(w, quick, runs)
	if err != nil {
		return err
	}
	if out != "" {
		if err := writePipeReport(out, rep); err != nil {
			return err
		}
	}
	if write {
		if err := writePipeReport(baseline, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "pipeline baseline written to %s (%d cells)\n", baseline, len(rep.Results))
		return nil
	}

	failures := comparePipeline(base, rep, tol)
	for _, f := range failures {
		fmt.Fprintln(w, "REGRESSION:", f)
	}
	if quick {
		fmt.Fprintf(w, "pipeline smoke passed: %d cells correct (%d perf deviations reported, not gated)\n",
			len(rep.Results), len(failures))
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d pipeline gate(s) failed against baseline %s", len(failures), baseline)
	}
	fmt.Fprintf(w, "pipeline gate passed: %d cells (pipelined/serial geomean >= 1, baselines within %.0f%%)\n",
		len(rep.Results), tol*100)
	return nil
}

func measurePipelineMatrix(w io.Writer, quick bool, runs int) (*PipeReport, error) {
	if runs < 1 {
		runs = 1
	}
	const depth = 256
	jobCount := 192
	workers := []int{2, 4}
	if g := runtime.GOMAXPROCS(0); g != 2 && g != 4 {
		workers = append(workers, g)
	}
	if quick {
		workers = workers[:1]
		jobCount = 12
	}
	rep := &PipeReport{Host: hostFingerprint()}
	for _, p := range workers {
		piped, serial, err := measurePipelinePair(p, depth, jobCount, runs)
		if err != nil {
			return nil, err
		}
		for _, r := range []PipeResult{piped, serial} {
			if r.RatioToSerial > 0 {
				fmt.Fprintf(w, "%-20s %12.1f sorts/s   %.3fx vs serial (paired median)\n",
					r.cell(), r.SortsPerSec, r.RatioToSerial)
			} else {
				fmt.Fprintf(w, "%-20s %12.1f sorts/s\n", r.cell(), r.SortsPerSec)
			}
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, nil
}

// benchJob is one prebuilt sort in the stream: a permutation of 0..n-1
// (so the sorted output is the identity), its sorter and its arena.
// Every job owns its memory — the disjointness the pipeline requires —
// and is reset to its seeded state between timed runs.
type benchJob struct {
	keys []int
	s    *core.Sorter
	mem  []model.Word
	less func(i, j int) bool
}

func buildJobs(count int) []*benchJob {
	jobs := make([]*benchJob, count)
	for j := range jobs {
		n := pipeSizes[j%len(pipeSizes)]
		keys := rand.New(rand.NewSource(int64(7919*j + 1))).Perm(n)
		a := &model.Arena{}
		s := core.NewSorter(a, n, core.AllocRandomized)
		jb := &benchJob{
			keys: keys,
			s:    s,
			mem:  make([]model.Word, a.Size()),
			// Less indices are 1-based; keys are distinct, so no tie-break.
			less: func(i, j int) bool { return keys[i-1] < keys[j-1] },
		}
		s.Seed(jb.mem)
		jobs[j] = jb
	}
	return jobs
}

// verify checks the job's places form a permutation that sorts its keys.
func (jb *benchJob) verify() error {
	n := len(jb.keys)
	out := make([]int, n)
	for i, r := range jb.s.Places(jb.mem) {
		if r < 1 || r > n {
			return fmt.Errorf("n=%d: element %d has rank %d outside [1, %d]", n, i, r, n)
		}
		out[r-1] = jb.keys[i]
	}
	for k := 0; k < n; k++ {
		if out[k] != k {
			return fmt.Errorf("n=%d: output[%d] = %d, not sorted", n, k, out[k])
		}
	}
	return nil
}

// reset restores the job's arena to its just-seeded state, exactly as
// the pool's Ctx.Reset does between pooled sorts.
func (jb *benchJob) reset() {
	clear(jb.mem)
	jb.s.Seed(jb.mem)
}

// measurePipelinePair times the same mixed-size job stream through a
// resident serial team and a resident pipelined crew of the same P.
// The order of the two timed halves alternates run by run, so machine
// drift across the measurement biases neither mode.
func measurePipelinePair(p, depth, jobCount, runs int) (piped, serial PipeResult, err error) {
	team := native.NewTeam(p, false)
	defer team.Close()
	pl := native.NewPipeline(p, depth, false)
	defer pl.Close()
	jobs := buildJobs(jobCount)

	timeSerial := func() (time.Duration, error) {
		runtime.GC()
		start := time.Now()
		for j, jb := range jobs {
			if _, err := team.Run(native.TeamJob{
				Prog: jb.s.Program(), Mem: jb.mem, Less: jb.less, Seed: uint64(j) + 1,
			}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	timePipelined := func() (time.Duration, error) {
		runtime.GC()
		start := time.Now()
		inFlight := make([]*native.PipeRun, len(jobs))
		for j, jb := range jobs {
			inFlight[j] = pl.Submit(native.PipeJob{
				Graph: jb.s.Graph(), Mem: jb.mem, Less: jb.less, Seed: uint64(j) + 1,
			})
		}
		for _, r := range inFlight {
			if _, err := r.Wait(); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	afterRun := func(mode string) error {
		for _, jb := range jobs {
			if err := jb.verify(); err != nil {
				return fmt.Errorf("p%d %s: %w", p, mode, err)
			}
			jb.reset()
		}
		return nil
	}

	pipedTimes := make([]time.Duration, 0, runs)
	serialTimes := make([]time.Duration, 0, runs)
	ratios := make([]float64, 0, runs)
	for r := 0; r <= runs; r++ {
		order := []string{"pipelined", "serial"}
		if r%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		var tp, tser time.Duration
		for _, mode := range order {
			var t time.Duration
			var err error
			if mode == "pipelined" {
				t, err = timePipelined()
				tp = t
			} else {
				t, err = timeSerial()
				tser = t
			}
			if err != nil {
				return PipeResult{}, PipeResult{}, fmt.Errorf("p%d %s: %w", p, mode, err)
			}
			if err := afterRun(mode); err != nil {
				return PipeResult{}, PipeResult{}, err
			}
		}
		if r > 0 { // run 0 is warmup
			pipedTimes = append(pipedTimes, tp)
			serialTimes = append(serialTimes, tser)
			ratios = append(ratios, tser.Seconds()/tp.Seconds())
		}
	}
	sorts := float64(len(jobs))
	piped = PipeResult{Mode: "pipelined", P: p, Depth: depth, Jobs: jobCount,
		SortsPerSec:   sorts / median(pipedTimes).Seconds(),
		RatioToSerial: medianFloat(ratios), Runs: runs}
	serial = PipeResult{Mode: "serial", P: p, Jobs: jobCount,
		SortsPerSec: sorts / median(serialTimes).Seconds(), Runs: runs}
	return piped, serial, nil
}

func medianFloat(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// comparePipeline runs the pipeline gates. The pipelined/serial >= 1
// gate is in-run and needs no baseline; the absolute and ratio-drift
// gates engage when one is present.
func comparePipeline(base, cur *PipeReport, tol float64) []string {
	var failures []string
	ci := cur.index()

	// Gate 1, in-run and unconditional: geomean pipelined/serial >= 1.
	var logSum float64
	cells := 0
	worst, worstCell := math.Inf(1), ""
	for _, c := range cur.Results {
		if c.Mode != "pipelined" {
			continue
		}
		ratio := c.RatioToSerial
		if ratio <= 0 { // pre-paired-ratio reports: quotient of medians
			s, ok := ci[PipeResult{Mode: "serial", P: c.P}.cell()]
			if !ok || s.SortsPerSec <= 0 {
				continue
			}
			ratio = c.SortsPerSec / s.SortsPerSec
		}
		logSum += math.Log(ratio)
		cells++
		if ratio < worst {
			worst, worstCell = ratio, fmt.Sprintf("p%d (%.2fx)", c.P, ratio)
		}
	}
	if cells > 0 {
		if g := math.Exp(logSum / float64(cells)); g < 1 {
			failures = append(failures, fmt.Sprintf(
				"pipelined/serial: geomean %.2fx < 1.00x over %d cells (worst %s) — pipelining no longer pays for itself",
				g, cells, worstCell))
		}
	}

	if base == nil {
		return failures
	}
	bi := base.index()

	// Gate 2 (comparable hosts): absolute geomean within tolerance.
	if base.Host.comparable(cur.Host) {
		logSum, cells = 0, 0
		worst, worstCell = 1.0, ""
		for _, c := range cur.Results {
			b, ok := bi[c.cell()]
			if !ok || b.SortsPerSec <= 0 || c.SortsPerSec <= 0 {
				continue
			}
			change := c.SortsPerSec / b.SortsPerSec
			logSum += math.Log(change)
			cells++
			if change < worst {
				worst, worstCell = change, c.cell()
			}
		}
		if cells > 0 {
			if g := math.Exp(logSum / float64(cells)); g < 1-tol {
				failures = append(failures, fmt.Sprintf(
					"throughput: geomean %.1f%% below baseline over %d cells (worst %s at %.1f%%)",
					100*(1-g), cells, worstCell, 100*(1-worst)))
			}
		}
	}

	// Gate 3 (any host): the pipelined/serial ratio's drift vs baseline,
	// each side's ratio taken as its paired per-run median.
	logSum, cells = 0, 0
	worst, worstCell = 1.0, ""
	for _, c := range cur.Results {
		if c.Mode != "pipelined" {
			continue
		}
		bp, ok := bi[c.cell()]
		if !ok || c.RatioToSerial <= 0 || bp.RatioToSerial <= 0 {
			continue
		}
		change := c.RatioToSerial / bp.RatioToSerial
		logSum += math.Log(change)
		cells++
		if change < worst {
			worst, worstCell = change, fmt.Sprintf("p%d", c.P)
		}
	}
	if cells > 0 {
		if g := math.Exp(logSum / float64(cells)); g < 1-tol {
			failures = append(failures, fmt.Sprintf(
				"ratio pipelined/serial vs baseline: geomean %.1f%% below over %d cells (worst %s)",
				100*(1-g), cells, worstCell))
		}
	}
	return failures
}

func readPipeReport(path string) (*PipeReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PipeReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writePipeReport(path string, r *PipeReport) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
