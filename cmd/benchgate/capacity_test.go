package main

import (
	"path/filepath"
	"strings"
	"testing"

	"wfsort/internal/loadgen"
)

func capReport(host Host, knee float64) *CapReport {
	return &CapReport{Host: host, SLOMs: capSLOMs, KneeRPS: knee, KneeOKRPS: knee * 0.9}
}

func TestCompareCapacityGate(t *testing.T) {
	base := capReport(hostA, 1000)

	// Within the widened tolerance: clean.
	if f := compareCapacity(base, capReport(hostA, 800), 0.10); len(f) != 0 {
		t.Fatalf("25%% tolerance should absorb a 20%% dip, got %v", f)
	}
	// A halved knee must fail.
	f := compareCapacity(base, capReport(hostA, 500), 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "below the baseline") {
		t.Fatalf("halved knee not gated: %v", f)
	}
	// Different host: absolute knees aren't comparable.
	if f := compareCapacity(base, capReport(hostB, 100), 0.10); len(f) != 0 {
		t.Fatalf("cross-host knees must not gate, got %v", f)
	}
	// Different SLO redefines the knee.
	cur := capReport(hostA, 100)
	cur.SLOMs = 5
	if f := compareCapacity(base, cur, 0.10); len(f) != 0 {
		t.Fatalf("cross-SLO knees must not gate, got %v", f)
	}
	// Quick-mode run against a full-mode baseline: not comparable.
	cur = capReport(hostA, 100)
	cur.Quick = true
	if f := compareCapacity(base, cur, 0.10); len(f) != 0 {
		t.Fatalf("quick knee gated against full baseline: %v", f)
	}
}

func TestCompareCapacityNoKnee(t *testing.T) {
	f := compareCapacity(nil, capReport(hostA, 0), 0.10)
	if len(f) != 1 || !strings.Contains(f[0], "no capacity knee") {
		t.Fatalf("missing knee not gated: %v", f)
	}
}

func TestCapacitySpecValidates(t *testing.T) {
	for _, quick := range []bool{false, true} {
		s := capacitySpec(quick)
		if err := s.Validate(); err != nil {
			t.Fatalf("capacitySpec(quick=%v) invalid: %v", quick, err)
		}
		// The sweep scales the spec; the scaled extremes must stay valid.
		for _, f := range []float64{0.5, 64} {
			if err := s.Scaled(f).Validate(); err != nil {
				t.Fatalf("capacitySpec(quick=%v).Scaled(%v) invalid: %v", quick, f, err)
			}
		}
	}
	if capacitySpec(true).TotalRate() != capacitySpec(false).TotalRate() {
		t.Fatal("quick mode must keep the same starting rate")
	}
}

func TestCapReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_capacity.json")
	in := capReport(hostA, 1234)
	in.Points = []loadgen.CapacityPoint{{OfferedRPS: 1234, P99Ms: 12, Pass: true}}
	if err := writeCapReport(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readCapReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.KneeRPS != in.KneeRPS || len(out.Points) != 1 || out.Points[0].P99Ms != 12 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	if _, err := readCapReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
}
